package core

import (
	"math"

	"lusail/internal/federation"
	"lusail/internal/qplan"
	"lusail/internal/sparql"
)

// decompose implements Algorithm 2: it splits the branch's conjunctive
// pattern set into subqueries such that (i) every pattern pair inside a
// subquery shares the same relevant sources and (ii) no pair shares a
// global join variable. It enumerates one decomposition per GJV root (plus
// connected-component continuation for disconnected graphs), estimates each
// decomposition's cost from the COUNT statistics, and returns the cheapest.
func (e *Engine) decompose(br *qplan.Branch, sources [][]string, gjv *GJVResult, stats *queryStats) []*Subquery {
	patterns := br.Patterns
	g := buildQueryGraph(patterns)

	// Line 3: no GJVs — the whole (connected component of the) query is one
	// subquery per component.
	roots := gjvRootNodes(gjv, g)
	if len(roots) == 0 {
		return e.componentsAsSubqueries(br, sources, g, stats)
	}

	var best []*Subquery
	bestCost := math.Inf(1)
	for _, root := range roots {
		sqs := e.decomposeFrom(root, g, patterns, sources, gjv)
		sqs = mergeSubqueries(sqs, gjv)
		cost := e.decompositionCost(sqs, patterns, stats)
		if cost < bestCost {
			bestCost = cost
			best = sqs
		}
	}
	e.attachFilters(br, best)
	e.estimate(best, patterns, stats)
	return best
}

// queryGraph models the query as an undirected graph whose vertices are the
// subject/object terms and whose edges are the triple patterns.
type queryGraph struct {
	nodeKeys []string         // vertex keys in first-seen order
	adj      map[string][]int // vertex key -> incident pattern indexes
	ends     [][2]string      // pattern index -> (subject key, object key)
}

func termKey(pt sparql.PatternTerm) string {
	if pt.IsVar() {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

func buildQueryGraph(patterns []sparql.TriplePattern) *queryGraph {
	g := &queryGraph{adj: map[string][]int{}}
	touch := func(k string) {
		if _, ok := g.adj[k]; !ok {
			g.adj[k] = nil
			g.nodeKeys = append(g.nodeKeys, k)
		}
	}
	for i, tp := range patterns {
		sk, ok := termKey(tp.S), termKey(tp.O)
		touch(sk)
		touch(ok)
		g.adj[sk] = append(g.adj[sk], i)
		if ok != sk {
			g.adj[ok] = append(g.adj[ok], i)
		}
		g.ends = append(g.ends, [2]string{sk, ok})
	}
	return g
}

// otherEnd returns the vertex at the far side of pattern i from vertex k.
func (g *queryGraph) otherEnd(i int, k string) string {
	if g.ends[i][0] == k {
		return g.ends[i][1]
	}
	return g.ends[i][0]
}

// gjvRootNodes returns the graph vertices of the GJVs, in stable order.
func gjvRootNodes(gjv *GJVResult, g *queryGraph) []string {
	var out []string
	for _, v := range gjv.GlobalVars() {
		key := "?" + v
		if _, ok := g.adj[key]; ok {
			out = append(out, key)
		}
	}
	return out
}

// conflict reports whether two patterns share a global join variable and
// therefore must not live in the same subquery.
func conflict(a, b sparql.TriplePattern, gjv *GJVResult) bool {
	for _, v := range a.Vars() {
		if gjv.IsGlobal(v) && b.HasVar(v) {
			return true
		}
	}
	return false
}

// decomposeFrom runs the branching phase of Algorithm 2 with the given root
// vertex, then continues from unvisited patterns so disconnected query
// graphs are fully covered.
func (e *Engine) decomposeFrom(root string, g *queryGraph, patterns []sparql.TriplePattern, sources [][]string, gjv *GJVResult) []*Subquery {
	visited := make([]bool, len(patterns))
	var subqueries []*Subquery
	var stack []string
	inStack := map[string]bool{}
	push := func(k string) {
		if !inStack[k] {
			inStack[k] = true
			stack = append(stack, k)
		}
	}
	push(root)

	newSubquery := func(i int) {
		subqueries = append(subqueries, &Subquery{
			Patterns:   []sparql.TriplePattern{patterns[i]},
			Sources:    sources[i],
			patternIdx: []int{i},
		})
	}

	canBeAdded := func(sq *Subquery, i int) bool {
		if !federation.SameSources(sq.Sources, sources[i]) {
			return false
		}
		for _, p := range sq.Patterns {
			if conflict(p, patterns[i], gjv) {
				return false
			}
		}
		return true
	}

	// getParentSubquery: the most recent subquery containing a pattern
	// incident to the vertex.
	parentOf := func(k string) *Subquery {
		for s := len(subqueries) - 1; s >= 0; s-- {
			for _, pi := range subqueries[s].patternIdx {
				if g.ends[pi][0] == k || g.ends[pi][1] == k {
					return subqueries[s]
				}
			}
		}
		return nil
	}

	for {
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parent := parentOf(k)
			for _, i := range g.adj[k] {
				if visited[i] {
					continue
				}
				visited[i] = true
				if parent != nil && canBeAdded(parent, i) {
					parent.Patterns = append(parent.Patterns, patterns[i])
					parent.patternIdx = append(parent.patternIdx, i)
				} else {
					newSubquery(i)
					parent = subqueries[len(subqueries)-1]
					// Note: subsequent edges of this vertex retry the same
					// new subquery first, mirroring the paper's expansion.
				}
				push(g.otherEnd(i, k))
			}
		}
		// Disconnected component: restart from any unvisited pattern.
		next := -1
		for i, v := range visited {
			if !v {
				next = i
				break
			}
		}
		if next < 0 {
			return subqueries
		}
		push(g.ends[next][0])
	}
}

// mergeSubqueries implements the merging phase: two subqueries merge when
// they share at least one variable, have the same sources, and no pattern
// pair across them conflicts on a GJV. Runs to fixpoint.
func mergeSubqueries(sqs []*Subquery, gjv *GJVResult) []*Subquery {
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(sqs); i++ {
			for j := i + 1; j < len(sqs); j++ {
				if !federation.SameSources(sqs[i].Sources, sqs[j].Sources) {
					continue
				}
				if len(sqs[i].SharedVars(sqs[j])) == 0 {
					continue
				}
				ok := true
				for _, pa := range sqs[i].Patterns {
					for _, pb := range sqs[j].Patterns {
						if conflict(pa, pb, gjv) {
							ok = false
							break
						}
					}
					if !ok {
						break
					}
				}
				if !ok {
					continue
				}
				sqs[i].Patterns = append(sqs[i].Patterns, sqs[j].Patterns...)
				sqs[i].patternIdx = append(sqs[i].patternIdx, sqs[j].patternIdx...)
				sqs = append(sqs[:j], sqs[j+1:]...)
				merged = true
				break outer
			}
		}
	}
	return sqs
}

// componentsAsSubqueries handles the GJV-free case: one subquery per
// connected component of the query graph.
func (e *Engine) componentsAsSubqueries(br *qplan.Branch, sources [][]string, g *queryGraph, stats *queryStats) []*Subquery {
	patterns := br.Patterns
	comp := make([]int, len(patterns))
	for i := range comp {
		comp[i] = -1
	}
	nComp := 0
	for i := range patterns {
		if comp[i] >= 0 {
			continue
		}
		// BFS over patterns connected through shared vertices.
		queue := []int{i}
		comp[i] = nComp
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, end := range g.ends[p] {
				for _, q := range g.adj[end] {
					if comp[q] < 0 {
						comp[q] = nComp
						queue = append(queue, q)
					}
				}
			}
		}
		nComp++
	}
	sqs := make([]*Subquery, nComp)
	for i, tp := range patterns {
		c := comp[i]
		if sqs[c] == nil {
			sqs[c] = &Subquery{Sources: sources[i]}
		}
		sqs[c].Patterns = append(sqs[c].Patterns, tp)
		sqs[c].patternIdx = append(sqs[c].patternIdx, i)
		// All patterns in a GJV-free component share one source set; keep
		// the intersection defensively.
		sqs[c].Sources = federation.IntersectSources(sqs[c].Sources, sources[i])
	}
	e.attachFilters(br, sqs)
	e.estimate(sqs, patterns, stats)
	return sqs
}

// attachFilters pushes branch filters into every subquery that binds all of
// the filter's variables. (A filter pushed into a subquery is also retained
// globally only when it spans subqueries; see execute.)
func (e *Engine) attachFilters(br *qplan.Branch, sqs []*Subquery) {
	for _, sq := range sqs {
		vars := map[string]bool{}
		for _, v := range sq.Vars() {
			vars[v] = true
		}
		for _, f := range br.Filters {
			if _, isExists := f.(sparql.ExprExists); isExists {
				continue
			}
			fv := sparql.ExprVars(f)
			if len(fv) == 0 {
				continue
			}
			ok := true
			for _, v := range fv {
				if !vars[v] {
					ok = false
					break
				}
			}
			if ok {
				sq.Filters = append(sq.Filters, f)
			}
		}
	}
}

// estimate sets EstCard on each subquery from the collected statistics.
func (e *Engine) estimate(sqs []*Subquery, patterns []sparql.TriplePattern, stats *queryStats) {
	for _, sq := range sqs {
		sq.EstCard = stats.subqueryCardinality(sq, sq.patternIdx, patterns)
		sq.CardKnown = stats.known(sq.patternIdx, sq.Sources)
	}
}

// decompositionCost scores a decomposition as the total estimated
// intermediate-result size across subqueries.
func (e *Engine) decompositionCost(sqs []*Subquery, patterns []sparql.TriplePattern, stats *queryStats) float64 {
	cost := 0.0
	for _, sq := range sqs {
		cost += stats.subqueryCardinality(sq, sq.patternIdx, patterns)
	}
	return cost
}
