package core

import (
	"context"
	"fmt"
	"time"

	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// Rows is the streaming cursor over one executing query — the primary way
// results leave the engine. Iteration follows the database/sql idiom:
//
//	rows, err := eng.Select(ctx, query)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row() // aligned to rows.Vars(), valid until next Next
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows are delivered as the pipeline produces them: memory stays bounded
// by operator state (hash-table build sides up to the spill budget, one
// VALUES block per bound join), not by the result size. Close is required
// on every path — it cancels in-flight endpoint work, releases spill
// files, and finalizes the profile; abandoning a cursor without Close
// leaks goroutines until the surrounding context ends. A cursor is not
// safe for concurrent use.
type Rows struct {
	src   RowStream
	vars  []string
	query *sparql.Query
	prof  *Profile
	ctx   context.Context
	start time.Time

	execStart time.Time
	exSpan    *obs.Span

	n      int64
	err    error
	closed bool
}

// startQuery sets up the per-query profile, trace, and warning sink. The
// caller owns their teardown: materialized paths finish inline, cursors
// finish in Close.
func (e *Engine) startQuery(ctx context.Context) (context.Context, *Profile, time.Time) {
	prof := &Profile{}
	if e.opts.Trace {
		prof.Trace = obs.NewSpan("query")
		ctx = obs.ContextWithSpan(ctx, prof.Trace)
	}
	ctx = resilience.WithWarnings(ctx)
	return ctx, prof, time.Now()
}

// newRows builds the full result pipeline for a plan and wraps it in a
// cursor. Branch pipelines are concatenated (UNION), then the solution
// modifiers apply: queries whose modifiers are streamable (projection,
// DISTINCT, OFFSET, LIMIT) keep the pipeline incremental end to end;
// ORDER BY, GROUP BY, and aggregates need the complete result and drain
// the stream at the tail — everything upstream still runs pipelined.
func (e *Engine) newRows(ctx context.Context, p *Plan, prof *Profile, start time.Time) (*Rows, error) {
	q := p.query
	if q.Form == sparql.AskForm {
		return nil, fmt.Errorf("lusail: a cursor streams rows; use Query for ASK")
	}
	execStart := time.Now()
	exCtx, exSpan := obs.StartSpan(ctx, "execution")
	var branches []RowStream
	for _, pb := range p.branches {
		bs, err := e.branchStream(exCtx, pb, prof)
		if err != nil {
			for _, b := range branches {
				b.Close()
			}
			exSpan.End()
			finishProfile(ctx, prof, start)
			return nil, err
		}
		branches = append(branches, bs)
	}

	// Union header: every branch variable, in first-seen order, matching
	// qplan.UnionRelations.
	var unionVars []string
	seen := map[string]bool{}
	for _, bs := range branches {
		for _, v := range bs.Vars() {
			if !seen[v] {
				seen[v] = true
				unionVars = append(unionVars, v)
			}
		}
	}
	aligned := make([]RowStream, len(branches))
	for i, bs := range branches {
		aligned[i] = newAlignStream(bs, unionVars)
	}
	src := newConcatStream(unionVars, aligned)

	if len(q.GroupBy) > 0 || q.HasAggregates() || len(q.OrderBy) > 0 {
		src = newDrainStream(q, src)
	} else {
		src = newAlignStream(src, q.ProjectedVars())
		if q.Distinct {
			src = newDedupStream(src)
		}
		src = newOffsetStream(src, q.Offset)
		src = newLimitStream(src, q.Limit)
	}
	return &Rows{
		src:       src,
		vars:      append([]string(nil), src.Vars()...),
		query:     q,
		prof:      prof,
		ctx:       ctx,
		start:     start,
		execStart: execStart,
		exSpan:    exSpan,
	}, nil
}

// finishProfile collects warnings and closes out the timings.
func finishProfile(ctx context.Context, prof *Profile, start time.Time) {
	prof.Warnings = append(prof.Warnings, resilience.TakeWarnings(ctx)...)
	if len(prof.Warnings) > 0 {
		prof.Trace.SetAttr("degraded", len(prof.Warnings))
	}
	prof.Total = time.Since(start)
}

// Vars returns the cursor's column header.
func (r *Rows) Vars() []string { return r.vars }

// Next advances to the next solution row, returning false at the end of
// the result or on error; Err distinguishes the two.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	// A cancelled query must fail, not end cleanly on whatever rows the
	// pipeline had already buffered.
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return false
	}
	if r.src.Next() {
		r.n++
		return true
	}
	r.err = r.src.Err()
	return false
}

// Row returns the current row, aligned to Vars (unbound variables are
// zero Terms). It is only valid until the next Next or Close; copy it to
// retain it.
func (r *Rows) Row() []rdf.Term { return r.src.Row() }

// Scan copies the current row into dest, one pointer per variable.
func (r *Rows) Scan(dest ...*rdf.Term) error {
	row := r.src.Row()
	if len(dest) != len(row) {
		return fmt.Errorf("lusail: Scan expects %d destinations, got %d", len(row), len(dest))
	}
	for i, d := range dest {
		*d = row[i]
	}
	return nil
}

// Binding returns the current row as a variable→term map, omitting
// unbound variables. The map is freshly allocated and safe to retain.
func (r *Rows) Binding() map[string]rdf.Term {
	row := r.src.Row()
	out := make(map[string]rdf.Term, len(r.vars))
	for i, v := range r.vars {
		if !row[i].IsZero() {
			out[v] = row[i]
		}
	}
	return out
}

// Err returns the error that terminated iteration, if any. Like
// database/sql, it is meaningful after Next returns false.
func (r *Rows) Err() error { return r.err }

// Close releases the pipeline — cancelling in-flight endpoint work,
// reaping goroutines, deleting spill files — and finalizes the profile.
// It is idempotent and must be called on every path, including early
// abandonment mid-iteration.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.src.Close()
	r.prof.Execution += time.Since(r.execStart)
	r.exSpan.SetAttr("rows", int(r.n))
	r.exSpan.End()
	finishProfile(r.ctx, r.prof, r.start)
	if r.prof.Trace != nil {
		r.prof.Trace.SetAttr("results", int(r.n))
		r.prof.Trace.End()
	}
	return err
}

// Profile returns the query's execution profile. It is complete only
// after Close; before that it returns nil.
func (r *Rows) Profile() *Profile {
	if !r.closed {
		return nil
	}
	return r.prof
}

// Select plans and executes a SELECT query, returning a streaming cursor
// over its solutions. The caller must Close the cursor on every path.
// This is the primary execution entry point; Query is the materializing
// convenience built on top of it.
func (e *Engine) Select(ctx context.Context, query string) (*Rows, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	if q.Form != sparql.SelectForm {
		return nil, fmt.Errorf("lusail: Select requires a SELECT query")
	}
	ctx, prof, start := e.startQuery(ctx)
	p, err := e.plan(ctx, q, prof)
	if err != nil {
		finishProfile(ctx, prof, start)
		if prof.Trace != nil {
			prof.Trace.End()
		}
		return nil, err
	}
	return e.newRows(ctx, p, prof, start)
}

// ExecutePlan runs a plan built by Plan and returns the materialized
// results and a per-execution profile. The plan is not mutated; concurrent
// ExecutePlan calls on one plan are safe. The profile's planning counters
// reflect the plan (GJVs, decomposition); its planning timings are zero
// because nothing was planned in this call.
func (e *Engine) ExecutePlan(ctx context.Context, p *Plan) (*sparql.Results, *Profile, error) {
	ctx, prof, start := e.startQuery(ctx)
	p.summarize(prof)
	res, err := e.runPlan(ctx, p, prof, start)
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// ExecutePlanStream executes a plan and returns a streaming cursor — the
// entry point a serving layer uses to flush rows to the wire as the
// pipeline produces them, for every plan shape. ASK plans are rejected (a
// boolean has no rows to stream); run them through ExecutePlan.
func (e *Engine) ExecutePlanStream(ctx context.Context, p *Plan) (*Rows, error) {
	ctx, prof, start := e.startQuery(ctx)
	p.summarize(prof)
	return e.newRows(ctx, p, prof, start)
}

// runPlan drains the plan's pipeline into a materialized result: the
// materializing execution path is the streaming path plus a full drain.
func (e *Engine) runPlan(ctx context.Context, p *Plan, prof *Profile, start time.Time) (*sparql.Results, error) {
	if p.query.Form == sparql.AskForm {
		return e.runAsk(ctx, p, prof, start)
	}
	rows, err := e.newRows(ctx, p, prof, start)
	if err != nil {
		return nil, err
	}
	res := sparql.NewResults(append([]string(nil), rows.Vars()...))
	//lint:lusail-vet budgetbound -- ExecutePlan is the materializing API by contract; upstream growth is bounded by per-response caps and join spill budgets
	for rows.Next() {
		res.Rows = append(res.Rows, copyRow(rows.Row()))
	}
	err = rows.Err()
	if cerr := rows.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runAsk answers an ASK plan through the pipeline with early exit: the
// first row of any branch proves true, and closing the pipeline cancels
// everything still in flight.
func (e *Engine) runAsk(ctx context.Context, p *Plan, prof *Profile, start time.Time) (*sparql.Results, error) {
	execStart := time.Now()
	exCtx, exSpan := obs.StartSpan(ctx, "execution")
	found := false
	var err error
	for _, pb := range p.branches {
		var bs RowStream
		bs, err = e.branchStream(exCtx, pb, prof)
		if err != nil {
			break
		}
		got := bs.Next()
		if !got {
			err = bs.Err()
		}
		if cerr := bs.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			break
		}
		if got {
			found = true
			break
		}
	}
	prof.Execution += time.Since(execStart)
	exSpan.End()
	finishProfile(ctx, prof, start)
	if prof.Trace != nil {
		prof.Trace.End()
	}
	if err != nil {
		return nil, err
	}
	return sparql.BoolResults(found), nil
}
