package core

import (
	"errors"
	"io"

	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"lusail/internal/diskstore"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
)

// Probe parallelism: once the build table holds at least
// parallelProbeMin rows, probe rows are pulled in batches and probed
// across the pool in chunks (mirroring the materialized parallelHashJoin
// threshold).
const (
	parallelProbeMin  = 4096
	probeBatchRows    = 512
	probeChunkMinRows = 64
)

// hashJoinStream inner-joins two streams with an incremental build/probe
// hash join: the build side is consumed into a hash table on first Next,
// then probe rows stream through one at a time (or in parallel batches
// against a large table), each emitting its matches immediately. Memory is
// bounded by the build side, never the output: a build side whose table
// exceeds the engine's JoinSpillBytes budget spills both sides to disk
// through the extsort machinery and the join finishes as a sort-merge over
// the spilled runs (grace-join style: first-row latency is traded for
// bounded memory).
//
// With no shared variables the operator degenerates to a cross product and
// keeps the build side in memory — a cross product cannot be keyed for a
// merge join, so it cannot spill. The build side is still held to the
// JoinSpillBytes budget: a remote endpoint must not be able to grow the
// build side without bound, so exceeding the budget fails the join
// instead. Such joins only arise between genuinely disjoint query
// components, which are small in practice.
//
// The spill path rides the sorter's record deduplication: duplicate
// (key,row) records collapse. That is sound here because every branch
// pipeline ends in a distinct-rows operator, so join multiplicities never
// reach the result.
type hashJoinStream struct {
	e     *Engine
	probe RowStream
	build RowStream

	vars        []string
	shared      []string
	probeKeyIdx []int
	buildKeyIdx []int
	buildExtra  []int // build columns appended after the probe row

	started bool
	table   map[string][][]rdf.Term
	cross   [][]rdf.Term
	sj      *spillJoin

	buildRows  int64
	buildBytes int64
	spilled    bool

	outBuf []([]rdf.Term)
	obi    int
	row    []rdf.Term
	err    error
	closed bool

	ctx    context.Context
	parent *obs.Span
	span   *obs.Span
	rows   int64
}

func (e *Engine) newHashJoinStream(ctx context.Context, probe, build RowStream) *hashJoinStream {
	pv, bv := probe.Vars(), build.Vars()
	s := &hashJoinStream{e: e, probe: probe, build: build, ctx: ctx, parent: obs.FromContext(ctx)}
	s.vars = append([]string(nil), pv...)
	pPos := make(map[string]int, len(pv))
	for i, v := range pv {
		pPos[v] = i
	}
	for i, v := range bv {
		if j, ok := pPos[v]; ok {
			s.shared = append(s.shared, v)
			s.probeKeyIdx = append(s.probeKeyIdx, j)
			s.buildKeyIdx = append(s.buildKeyIdx, i)
		} else {
			s.vars = append(s.vars, v)
			s.buildExtra = append(s.buildExtra, i)
		}
	}
	return s
}

func (s *hashJoinStream) Vars() []string  { return s.vars }
func (s *hashJoinStream) Row() []rdf.Term { return s.row }
func (s *hashJoinStream) Err() error      { return s.err }

func (s *hashJoinStream) Next() bool {
	if s.closed || s.err != nil {
		return false
	}
	if !s.started {
		s.started = true
		if err := s.start(); err != nil {
			s.err = err
			return false
		}
	}
	for {
		if s.obi < len(s.outBuf) {
			s.row = s.outBuf[s.obi]
			s.obi++
			s.rows++
			return true
		}
		s.outBuf, s.obi = s.outBuf[:0], 0
		if s.spilled {
			batch, err := s.sj.nextMatches(s)
			if err != nil {
				s.err = err
				return false
			}
			if batch == nil {
				return false
			}
			s.outBuf = batch
			continue
		}
		if !s.fillFromProbe() {
			if err := s.probe.Err(); err != nil {
				s.err = err
			}
			return false
		}
	}
}

// start consumes the build side, switching to the spill path if the table
// outgrows the byte budget.
func (s *hashJoinStream) start() error {
	s.span = s.parent.StartChild("hash-join")
	s.span.SetAttr("on", joinLabel(s.shared))
	budget := s.e.opts.JoinSpillBytes
	if len(s.shared) == 0 {
		for s.build.Next() {
			row := copyRow(s.build.Row())
			s.cross = append(s.cross, row)
			s.buildRows++
			s.buildBytes += spillRowBytes(row)
			if s.buildBytes > budget {
				_ = s.closeBuild()
				return fmt.Errorf("core: cross-join build side exceeds the %d-byte join budget after %d rows: a cross product cannot spill; restrict the disjoint components or raise JoinSpillBytes", budget, s.buildRows)
			}
		}
		return s.closeBuild()
	}
	s.table = make(map[string][][]rdf.Term)
	for s.build.Next() {
		row := copyRow(s.build.Row())
		key, ok := qplan.JoinKey(row, s.buildKeyIdx)
		if !ok {
			continue // unbound join key: can never match in an inner join
		}
		s.table[key] = append(s.table[key], row)
		s.buildRows++
		s.buildBytes += spillRowBytes(row)
		if s.buildBytes > budget {
			return s.spillToDisk(key)
		}
	}
	return s.closeBuild()
}

func (s *hashJoinStream) closeBuild() error {
	if err := s.build.Err(); err != nil {
		return err
	}
	return s.build.Close()
}

// fillFromProbe pulls probe rows and emits their matches into outBuf,
// returning false when the probe side is exhausted. Against a large table
// it pulls a batch and probes it across the pool in parallel.
func (s *hashJoinStream) fillFromProbe() bool {
	if s.buildRows == 0 {
		return false // empty build side: inner join is empty, skip the probe
	}
	if s.buildRows >= parallelProbeMin {
		return s.fillParallel()
	}
	for s.probe.Next() {
		prow := s.probe.Row()
		for _, brow := range s.matches(prow) {
			s.outBuf = append(s.outBuf, s.combine(prow, brow))
		}
		if len(s.outBuf) > 0 {
			return true
		}
	}
	return false
}

func (s *hashJoinStream) matches(prow []rdf.Term) [][]rdf.Term {
	if len(s.shared) == 0 {
		return s.cross
	}
	key, ok := qplan.JoinKey(prow, s.probeKeyIdx)
	if !ok {
		return nil
	}
	return s.table[key]
}

func (s *hashJoinStream) fillParallel() bool {
	var batch [][]rdf.Term
	for len(batch) < probeBatchRows && s.probe.Next() {
		batch = append(batch, copyRow(s.probe.Row()))
	}
	if len(batch) == 0 {
		return false
	}
	workers := s.e.pool.Limit()
	chunk := (len(batch) + workers - 1) / workers
	if chunk < probeChunkMinRows {
		chunk = probeChunkMinRows
	}
	var chunks [][][]rdf.Term
	for start := 0; start < len(batch); start += chunk {
		end := min(start+chunk, len(batch))
		chunks = append(chunks, batch[start:end])
	}
	results := make([][][]rdf.Term, len(chunks))
	var mu sync.Mutex
	s.e.pool.ForEach(s.ctx, len(chunks), func(i int) error {
		var out [][]rdf.Term
		for _, prow := range chunks[i] {
			for _, brow := range s.matches(prow) {
				out = append(out, s.combine(prow, brow))
			}
		}
		mu.Lock()
		results[i] = out
		mu.Unlock()
		return nil
	})
	for _, out := range results {
		s.outBuf = append(s.outBuf, out...)
	}
	// A batch may produce zero matches; report progress anyway — the caller
	// loops until outBuf fills or the probe side ends.
	return true
}

func (s *hashJoinStream) combine(prow, brow []rdf.Term) []rdf.Term {
	out := make([]rdf.Term, len(s.vars))
	copy(out, prow)
	for k, bi := range s.buildExtra {
		out[len(prow)+k] = brow[bi]
	}
	return out
}

func (s *hashJoinStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err1, err2 error
	err1 = s.build.Close()
	err2 = s.probe.Close()
	if s.sj != nil {
		s.sj.close()
	}
	s.table = nil
	s.cross = nil
	s.span.SetAttr("build_rows", int(s.buildRows))
	s.span.SetAttr("spilled", s.spilled)
	s.span.SetAttr("rows", int(s.rows))
	s.span.End()
	if err1 != nil {
		return err1
	}
	return err2
}

func joinLabel(shared []string) string {
	if len(shared) == 0 {
		return "(cross)"
	}
	out := ""
	for i, v := range shared {
		if i > 0 {
			out += ","
		}
		out += "?" + v
	}
	return out
}

// --- spill path -----------------------------------------------------------

// spillToDisk dumps the in-memory table plus the rest of both inputs into
// two external sorters keyed by join key, then sets up the merge join.
// lastKey is the key whose insert crossed the budget.
func (s *hashJoinStream) spillToDisk(lastKey string) error {
	s.spilled = true
	budget := s.e.opts.JoinSpillBytes
	buildSorter := diskstore.NewSorter("", "lusail-join-build", budget/2)
	probeSorter := diskstore.NewSorter("", "lusail-join-probe", budget/2)
	fail := func(err error) error {
		buildSorter.Close()
		probeSorter.Close()
		return err
	}
	var rec []byte
	for key, rows := range s.table {
		for _, row := range rows {
			rec = encodeSpillRec(rec[:0], key, row)
			if err := buildSorter.Add(rec); err != nil {
				return fail(err)
			}
		}
	}
	s.table = nil
	_ = lastKey
	for s.build.Next() {
		row := s.build.Row()
		key, ok := qplan.JoinKey(row, s.buildKeyIdx)
		if !ok {
			continue
		}
		s.buildRows++
		rec = encodeSpillRec(rec[:0], key, row)
		if err := buildSorter.Add(rec); err != nil {
			return fail(err)
		}
	}
	if err := s.closeBuild(); err != nil {
		return fail(err)
	}
	for s.probe.Next() {
		row := s.probe.Row()
		key, ok := qplan.JoinKey(row, s.probeKeyIdx)
		if !ok {
			continue
		}
		rec = encodeSpillRec(rec[:0], key, row)
		if err := probeSorter.Add(rec); err != nil {
			return fail(err)
		}
	}
	if err := s.probe.Err(); err != nil {
		return fail(err)
	}
	bIt, err := buildSorter.Iter()
	if err != nil {
		return fail(err)
	}
	pIt, err := probeSorter.Iter()
	if err != nil {
		bIt.Close()
		probeSorter.Close()
		return err
	}
	s.sj = &spillJoin{build: &spillCursor{it: bIt}, probe: &spillCursor{it: pIt}}
	s.sj.build.advance()
	s.sj.probe.advance()
	return nil
}

// spillCursor holds a stable copy of the sorter iterator's current record.
type spillCursor struct {
	it  *diskstore.SortIter
	cur []byte // nil at EOF
	err error
}

func (c *spillCursor) advance() {
	rec, err := c.it.Next()
	if err != nil {
		c.cur = nil
		if !errors.Is(err, io.EOF) { // a real failure, not end-of-runs
			c.err = err
		}
		return
	}
	c.cur = append(c.cur[:0], rec...)
}

// spillJoin merge-joins the two sorted spills group by group: records
// sharing a join key are contiguous after sorting, so each matched key
// materializes only its build-side group while probe rows of that key
// stream through.
type spillJoin struct {
	build, probe *spillCursor
	group        [][]rdf.Term // decoded build rows of the current key
	groupKey     []byte
}

// nextMatches returns the combined rows for the next probe row that has
// build matches, or (nil, nil) at end of join.
func (sj *spillJoin) nextMatches(hj *hashJoinStream) ([][]rdf.Term, error) {
	for {
		if err := sj.build.err; err != nil {
			return nil, err
		}
		if err := sj.probe.err; err != nil {
			return nil, err
		}
		if sj.group != nil {
			if sj.probe.cur != nil && bytes.Equal(spillRecKey(sj.probe.cur), sj.groupKey) {
				prow, err := decodeSpillRow(sj.probe.cur)
				if err != nil {
					return nil, err
				}
				sj.probe.advance()
				out := make([][]rdf.Term, 0, len(sj.group))
				for _, brow := range sj.group {
					out = append(out, hj.combine(prow, brow))
				}
				return out, nil
			}
			sj.group, sj.groupKey = nil, nil
			continue
		}
		if sj.build.cur == nil || sj.probe.cur == nil {
			return nil, nil
		}
		bKey, pKey := spillRecKey(sj.build.cur), spillRecKey(sj.probe.cur)
		switch c := bytes.Compare(bKey, pKey); {
		case c < 0:
			sj.skipGroup(sj.build, bKey)
		case c > 0:
			sj.skipGroup(sj.probe, pKey)
		default:
			sj.groupKey = append([]byte(nil), bKey...)
			for sj.build.cur != nil && bytes.Equal(spillRecKey(sj.build.cur), sj.groupKey) {
				brow, err := decodeSpillRow(sj.build.cur)
				if err != nil {
					return nil, err
				}
				sj.group = append(sj.group, brow)
				sj.build.advance()
			}
		}
	}
}

func (sj *spillJoin) skipGroup(c *spillCursor, key []byte) {
	key = append([]byte(nil), key...)
	for c.cur != nil && bytes.Equal(spillRecKey(c.cur), key) {
		c.advance()
	}
}

func (sj *spillJoin) close() {
	sj.build.it.Close()
	sj.probe.it.Close()
	sj.group = nil
}

// --- spill record encoding ------------------------------------------------
//
// Layout: uvarint(len key) | key | uvarint(nTerms) | per term:
// kind byte, uvarint-framed value, lang, datatype. Records sharing a key
// share a byte prefix, so bytes.Compare sorting groups equal keys
// contiguously — exactly what the merge join needs.

func encodeSpillRec(buf []byte, key string, row []rdf.Term) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, t := range row {
		buf = append(buf, byte(t.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
		buf = append(buf, t.Value...)
		buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
		buf = append(buf, t.Lang...)
		buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
		buf = append(buf, t.Datatype...)
	}
	return buf
}

// spillRecKey returns the key bytes of an encoded record.
func spillRecKey(rec []byte) []byte {
	n, w := binary.Uvarint(rec)
	return rec[w : w+int(n)]
}

// decodeSpillRow decodes the row part of an encoded record. The returned
// terms own their storage.
func decodeSpillRow(rec []byte) ([]rdf.Term, error) {
	n, w := binary.Uvarint(rec)
	if w <= 0 {
		return nil, fmt.Errorf("lusail: corrupt spill record")
	}
	p := rec[w+int(n):]
	nt, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("lusail: corrupt spill record")
	}
	p = p[w:]
	row := make([]rdf.Term, nt)
	readStr := func() (string, bool) {
		l, w := binary.Uvarint(p)
		if w <= 0 || int(l) > len(p)-w {
			return "", false
		}
		s := string(p[w : w+int(l)])
		p = p[w+int(l):]
		return s, true
	}
	for i := range row {
		if len(p) < 1 {
			return nil, fmt.Errorf("lusail: corrupt spill record")
		}
		kind := p[0]
		p = p[1:]
		v, ok1 := readStr()
		lang, ok2 := readStr()
		dt, ok3 := readStr()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("lusail: corrupt spill record")
		}
		row[i] = rdf.Term{Kind: rdf.Kind(kind), Value: v, Lang: lang, Datatype: dt}
	}
	return row, nil
}

// spillRowBytes estimates a row's resident footprint in the hash table.
func spillRowBytes(row []rdf.Term) int64 {
	n := int64(24 + 16*len(row))
	for _, t := range row {
		n += int64(len(t.Value) + len(t.Lang) + len(t.Datatype) + 48)
	}
	return n
}
