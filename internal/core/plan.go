package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
	"lusail/internal/sparql/sema"
)

// Epoch identifies the planning inputs of an engine at a point in time: the
// federation it runs over and the catalog generation it plans from. Two
// equal epochs guarantee that a Plan built under one is still valid under
// the other — decomposition and GJV analysis are deterministic per query,
// federation, and catalog state — so epochs are the invalidation key for
// plan and result caches layered above the engine.
type Epoch struct {
	Federation uint64 `json:"federation"`
	Catalog    uint64 `json:"catalog"`
}

// String renders the epoch for admin inspection routes.
func (ep Epoch) String() string { return fmt.Sprintf("fed%d/cat%d", ep.Federation, ep.Catalog) }

// Epoch returns the engine's current planning epoch. It changes when the
// catalog is updated (a background refresh, a Put, a Drop); the federation
// component is fixed for the engine's lifetime.
func (e *Engine) Epoch() Epoch {
	ep := Epoch{Federation: e.fed.Epoch()}
	if e.cat != nil {
		ep.Catalog = e.cat.Epoch()
	}
	return ep
}

// Plan is a reusable execution plan for one parsed query: the output of
// source selection, statistics collection, GJV detection, and LADE
// decomposition — everything that precedes SAPE execution. A Plan is
// immutable after Engine.Plan returns and safe to execute concurrently from
// many goroutines: ExecutePlan clones the per-execution state (delay
// decisions) instead of mutating the plan. Caching Plans across requests
// is how a long-running service pays the planning phases once per distinct
// query shape instead of once per call.
type Plan struct {
	query    *sparql.Query
	epoch    Epoch
	branches []*plannedBranch

	// Planning summary, copied into every executing Profile.
	gjvs          []string
	subqueries    int
	decomposition []string
	semaWarnings  []resilience.Warning
	rewriteNotes  []string
}

// plannedBranch is the planned form of one conjunctive branch.
type plannedBranch struct {
	br  *qplan.Branch
	sqs []*Subquery
	// empty marks a branch where a mandatory pattern has no relevant
	// source: the branch is provably empty and execution is skipped.
	empty bool
}

// Epoch returns the epoch the plan was built under. A plan whose epoch no
// longer matches Engine.Epoch() may rest on stale catalog decisions and
// should be replanned.
func (p *Plan) Epoch() Epoch { return p.epoch }

// Stale reports whether the engine's planning inputs have changed since the
// plan was built.
func (p *Plan) Stale(e *Engine) bool { return p.epoch != e.Epoch() }

// GJVs returns the detected global join variables.
func (p *Plan) GJVs() []string { return p.gjvs }

// Subqueries returns the number of subqueries after decomposition.
func (p *Plan) Subqueries() int { return p.subqueries }

// Decomposition returns the human-readable subquery forms.
func (p *Plan) Decomposition() []string { return p.decomposition }

// summarize copies the plan's planning summary into a Profile, so
// executions of a cached plan still report what was planned (but not the
// probe counters of the planning run — a cached execution issued none).
func (p *Plan) summarize(prof *Profile) {
	prof.GJVs = append(prof.GJVs, p.gjvs...)
	prof.Subqueries += p.subqueries
	prof.Decomposition = append(prof.Decomposition, p.decomposition...)
	prof.Warnings = append(prof.Warnings, p.semaWarnings...)
	prof.RewriteNotes = append(prof.RewriteNotes, p.rewriteNotes...)
}

// Plan runs the planning phases for a parsed query — source selection,
// COUNT statistics, GJV detection, LADE decomposition — and returns the
// reusable plan. The companion entry points ExecutePlan and
// ExecutePlanStream run a plan; Query is the plan-then-execute convenience.
func (e *Engine) Plan(ctx context.Context, q *sparql.Query) (*Plan, error) {
	return e.plan(ctx, q, &Profile{})
}

// PlanString parses and plans a query.
func (e *Engine) PlanString(ctx context.Context, query string) (*Plan, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Plan(ctx, q)
}

// plan is the internal planning entry point: it fills prof with the
// planning-phase timings and counters while building the plan. Before
// decomposition it runs the static analysis: error-tier findings reject the
// query with a *sparql.SemaError (no endpoint traffic was spent), warnings
// thread into the profile under client.PhaseSema, and the sema rewrites
// produce the query that is actually planned.
func (e *Engine) plan(ctx context.Context, q *sparql.Query, prof *Profile) (*Plan, error) {
	var semaWarns []resilience.Warning
	if !e.opts.DisableSemaChecks {
		semaErr, rest := sema.Vet(q, "")
		if semaErr != nil {
			e.semaErrors.Inc()
			return nil, semaErr
		}
		for _, d := range rest {
			e.semaWarnings.Inc()
			semaWarns = append(semaWarns, resilience.Warning{
				Phase:   client.PhaseSema,
				Message: d.String(),
			})
		}
		prof.Warnings = append(prof.Warnings, semaWarns...)
	}
	var notes []string
	if !e.opts.DisableQueryRewrite {
		var rewritten *sparql.Query
		rewritten, notes = sema.Rewrite(q)
		if len(notes) > 0 {
			e.semaRewrites.Add(int64(len(notes)))
			q = rewritten
		}
		prof.RewriteNotes = append(prof.RewriteNotes, notes...)
	}

	branches, err := qplan.Normalize(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{query: q, epoch: e.Epoch(), semaWarnings: semaWarns, rewriteNotes: notes}
	for _, br := range branches {
		pb, err := e.planBranch(ctx, br, prof)
		if err != nil {
			return nil, err
		}
		p.branches = append(p.branches, pb)
	}
	p.gjvs = append([]string(nil), prof.GJVs...)
	p.subqueries = prof.Subqueries
	p.decomposition = append([]string(nil), prof.Decomposition...)
	return p, nil
}

// planBranch runs phases 1 (source selection) and 2 (LADE analysis) for one
// conjunctive branch.
func (e *Engine) planBranch(ctx context.Context, br *qplan.Branch, prof *Profile) (*plannedBranch, error) {
	bctx, bsp := obs.StartSpan(ctx, "branch")
	defer bsp.End()
	bsp.SetAttr("patterns", len(br.Patterns))
	ctx = bctx

	// Phase 1: source selection (per triple pattern, cached ASK probes).
	t0 := time.Now()
	ssCtx, ssSpan := obs.StartSpan(ctx, "source-selection")
	if !e.opts.CacheSources {
		e.sel.ClearCache()
	}
	sources := make([][]string, len(br.Patterns))
	err := e.pool.ForEach(ssCtx, len(br.Patterns), func(i int) error {
		s, err := e.sel.RelevantSources(ssCtx, br.Patterns[i])
		if err != nil {
			return err
		}
		sources[i] = s
		return nil
	})
	ssSpan.End()
	if err != nil {
		return nil, fmt.Errorf("lusail: source selection: %w", err)
	}
	prof.SourceSelection += time.Since(t0)

	for _, s := range sources {
		if len(s) == 0 {
			// A mandatory pattern with no relevant source: the branch is
			// provably empty; skip analysis and execution.
			return &plannedBranch{br: br, empty: true}, nil
		}
	}

	// Phase 2: LADE analysis — statistics, GJV detection, decomposition.
	t1 := time.Now()
	anCtx, anSpan := obs.StartSpan(ctx, "analysis")
	stats, err := e.collectStats(anCtx, br, sources)
	if err != nil {
		anSpan.End()
		return nil, fmt.Errorf("lusail: statistics: %w", err)
	}
	prof.CountProbes += stats.probes
	prof.CatalogHits += stats.catalogHits

	gjv, err := e.detectGJVs(anCtx, br.Patterns, sources)
	if err != nil {
		anSpan.End()
		return nil, fmt.Errorf("lusail: GJV detection: %w", err)
	}
	prof.ChecksIssued += gjv.ChecksIssued
	prof.CheckCacheHit += gjv.CacheHits
	prof.GJVs = append(prof.GJVs, gjv.GlobalVars()...)

	subqueries := e.decompose(br, sources, gjv, stats)
	prof.Subqueries += len(subqueries)
	for _, sq := range subqueries {
		prof.Decomposition = append(prof.Decomposition, sq.String())
	}
	anSpan.SetAttr("gjvs", strings.Join(gjv.GlobalVars(), ","))
	anSpan.SetAttr("subqueries", len(subqueries))
	anSpan.End()
	prof.Analysis += time.Since(t1)

	return &plannedBranch{br: br, sqs: subqueries}, nil
}

// cloneSubqueries copies the per-execution subquery state so that one plan
// can execute concurrently: execute mutates delay decisions (Delayed), so
// each execution gets its own Subquery structs. The pattern/source/filter
// slices are shared — execution only reads them.
func cloneSubqueries(sqs []*Subquery) []*Subquery {
	out := make([]*Subquery, len(sqs))
	for i, sq := range sqs {
		c := *sq
		out[i] = &c
	}
	return out
}

// Execution entry points — ExecutePlan (materializing) and
// ExecutePlanStream (cursor) — live in cursor.go; both run the same
// streaming pipeline.
