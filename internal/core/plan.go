package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// Epoch identifies the planning inputs of an engine at a point in time: the
// federation it runs over and the catalog generation it plans from. Two
// equal epochs guarantee that a Plan built under one is still valid under
// the other — decomposition and GJV analysis are deterministic per query,
// federation, and catalog state — so epochs are the invalidation key for
// plan and result caches layered above the engine.
type Epoch struct {
	Federation uint64 `json:"federation"`
	Catalog    uint64 `json:"catalog"`
}

// String renders the epoch for admin inspection routes.
func (ep Epoch) String() string { return fmt.Sprintf("fed%d/cat%d", ep.Federation, ep.Catalog) }

// Epoch returns the engine's current planning epoch. It changes when the
// catalog is updated (a background refresh, a Put, a Drop); the federation
// component is fixed for the engine's lifetime.
func (e *Engine) Epoch() Epoch {
	ep := Epoch{Federation: e.fed.Epoch()}
	if e.cat != nil {
		ep.Catalog = e.cat.Epoch()
	}
	return ep
}

// Plan is a reusable execution plan for one parsed query: the output of
// source selection, statistics collection, GJV detection, and LADE
// decomposition — everything that precedes SAPE execution. A Plan is
// immutable after Engine.Plan returns and safe to execute concurrently from
// many goroutines: ExecutePlan clones the per-execution state (delay
// decisions) instead of mutating the plan. Caching Plans across requests
// is how a long-running service pays the planning phases once per distinct
// query shape instead of once per call.
type Plan struct {
	query    *sparql.Query
	epoch    Epoch
	branches []*plannedBranch

	// Planning summary, copied into every executing Profile.
	gjvs          []string
	subqueries    int
	decomposition []string
}

// plannedBranch is the planned form of one conjunctive branch.
type plannedBranch struct {
	br  *qplan.Branch
	sqs []*Subquery
	// empty marks a branch where a mandatory pattern has no relevant
	// source: the branch is provably empty and execution is skipped.
	empty bool
}

// Epoch returns the epoch the plan was built under. A plan whose epoch no
// longer matches Engine.Epoch() may rest on stale catalog decisions and
// should be replanned.
func (p *Plan) Epoch() Epoch { return p.epoch }

// Stale reports whether the engine's planning inputs have changed since the
// plan was built.
func (p *Plan) Stale(e *Engine) bool { return p.epoch != e.Epoch() }

// GJVs returns the detected global join variables.
func (p *Plan) GJVs() []string { return p.gjvs }

// Subqueries returns the number of subqueries after decomposition.
func (p *Plan) Subqueries() int { return p.subqueries }

// Decomposition returns the human-readable subquery forms.
func (p *Plan) Decomposition() []string { return p.decomposition }

// summarize copies the plan's planning summary into a Profile, so
// executions of a cached plan still report what was planned (but not the
// probe counters of the planning run — a cached execution issued none).
func (p *Plan) summarize(prof *Profile) {
	prof.GJVs = append(prof.GJVs, p.gjvs...)
	prof.Subqueries += p.subqueries
	prof.Decomposition = append(prof.Decomposition, p.decomposition...)
}

// streamable reports whether the plan qualifies for incremental row
// delivery: a single branch decomposed into a single subquery (no global
// join), no OPTIONAL/VALUES blocks, and no solution modifier that needs the
// complete result (see earlyEligible).
func (p *Plan) streamable() bool {
	if !earlyEligible(p.query) || len(p.branches) != 1 {
		return false
	}
	pb := p.branches[0]
	if len(pb.br.Optionals) > 0 || len(pb.br.Values) > 0 {
		return false
	}
	return pb.empty || len(pb.sqs) == 1
}

// Plan runs the planning phases for a parsed query — source selection,
// COUNT statistics, GJV detection, LADE decomposition — and returns the
// reusable plan. The companion entry points ExecutePlan and
// ExecutePlanStream run a plan; Query is the plan-then-execute convenience.
func (e *Engine) Plan(ctx context.Context, q *sparql.Query) (*Plan, error) {
	return e.plan(ctx, q, &Profile{})
}

// PlanString parses and plans a query.
func (e *Engine) PlanString(ctx context.Context, query string) (*Plan, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Plan(ctx, q)
}

// plan is the internal planning entry point: it fills prof with the
// planning-phase timings and counters while building the plan.
func (e *Engine) plan(ctx context.Context, q *sparql.Query, prof *Profile) (*Plan, error) {
	branches, err := qplan.Normalize(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{query: q, epoch: e.Epoch()}
	for _, br := range branches {
		pb, err := e.planBranch(ctx, br, prof)
		if err != nil {
			return nil, err
		}
		p.branches = append(p.branches, pb)
	}
	p.gjvs = append([]string(nil), prof.GJVs...)
	p.subqueries = prof.Subqueries
	p.decomposition = append([]string(nil), prof.Decomposition...)
	return p, nil
}

// planBranch runs phases 1 (source selection) and 2 (LADE analysis) for one
// conjunctive branch.
func (e *Engine) planBranch(ctx context.Context, br *qplan.Branch, prof *Profile) (*plannedBranch, error) {
	bctx, bsp := obs.StartSpan(ctx, "branch")
	defer bsp.End()
	bsp.SetAttr("patterns", len(br.Patterns))
	ctx = bctx

	// Phase 1: source selection (per triple pattern, cached ASK probes).
	t0 := time.Now()
	ssCtx, ssSpan := obs.StartSpan(ctx, "source-selection")
	if !e.opts.CacheSources {
		e.sel.ClearCache()
	}
	sources := make([][]string, len(br.Patterns))
	err := e.pool.ForEach(ssCtx, len(br.Patterns), func(i int) error {
		s, err := e.sel.RelevantSources(ssCtx, br.Patterns[i])
		if err != nil {
			return err
		}
		sources[i] = s
		return nil
	})
	ssSpan.End()
	if err != nil {
		return nil, fmt.Errorf("lusail: source selection: %w", err)
	}
	prof.SourceSelection += time.Since(t0)

	for _, s := range sources {
		if len(s) == 0 {
			// A mandatory pattern with no relevant source: the branch is
			// provably empty; skip analysis and execution.
			return &plannedBranch{br: br, empty: true}, nil
		}
	}

	// Phase 2: LADE analysis — statistics, GJV detection, decomposition.
	t1 := time.Now()
	anCtx, anSpan := obs.StartSpan(ctx, "analysis")
	stats, err := e.collectStats(anCtx, br, sources)
	if err != nil {
		anSpan.End()
		return nil, fmt.Errorf("lusail: statistics: %w", err)
	}
	prof.CountProbes += stats.probes
	prof.CatalogHits += stats.catalogHits

	gjv, err := e.detectGJVs(anCtx, br.Patterns, sources)
	if err != nil {
		anSpan.End()
		return nil, fmt.Errorf("lusail: GJV detection: %w", err)
	}
	prof.ChecksIssued += gjv.ChecksIssued
	prof.CheckCacheHit += gjv.CacheHits
	prof.GJVs = append(prof.GJVs, gjv.GlobalVars()...)

	subqueries := e.decompose(br, sources, gjv, stats)
	prof.Subqueries += len(subqueries)
	for _, sq := range subqueries {
		prof.Decomposition = append(prof.Decomposition, sq.String())
	}
	anSpan.SetAttr("gjvs", strings.Join(gjv.GlobalVars(), ","))
	anSpan.SetAttr("subqueries", len(subqueries))
	anSpan.End()
	prof.Analysis += time.Since(t1)

	return &plannedBranch{br: br, sqs: subqueries}, nil
}

// cloneSubqueries copies the per-execution subquery state so that one plan
// can execute concurrently: execute mutates delay decisions (Delayed), so
// each execution gets its own Subquery structs. The pattern/source/filter
// slices are shared — execution only reads them.
func cloneSubqueries(sqs []*Subquery) []*Subquery {
	out := make([]*Subquery, len(sqs))
	for i, sq := range sqs {
		c := *sq
		out[i] = &c
	}
	return out
}

// ExecutePlan runs a plan built by Plan and returns the final results and a
// per-execution profile. The plan is not mutated; concurrent ExecutePlan
// calls on one plan are safe. The profile's planning counters reflect the
// plan (GJVs, decomposition); its planning timings are zero because nothing
// was planned in this call.
func (e *Engine) ExecutePlan(ctx context.Context, p *Plan) (*sparql.Results, *Profile, error) {
	start := time.Now()
	prof := &Profile{}
	if e.opts.Trace {
		prof.Trace = obs.NewSpan("query")
		ctx = obs.ContextWithSpan(ctx, prof.Trace)
		defer prof.Trace.End()
	}
	ctx = resilience.WithWarnings(ctx)
	defer func() {
		prof.Warnings = append(prof.Warnings, resilience.TakeWarnings(ctx)...)
		if len(prof.Warnings) > 0 {
			prof.Trace.SetAttr("degraded", len(prof.Warnings))
		}
	}()
	p.summarize(prof)
	res, err := e.finishPlan(ctx, p, prof)
	if err != nil {
		return nil, nil, err
	}
	prof.Total = time.Since(start)
	prof.Trace.SetAttr("results", res.Len())
	return res, prof, nil
}

// finishPlan executes every branch of the plan (phase 3, SAPE) and
// finalizes the result — projection, modifiers, aggregates. Callers own the
// trace and warning-sink setup.
func (e *Engine) finishPlan(ctx context.Context, p *Plan, prof *Profile) (*sparql.Results, error) {
	var all *sparql.Results
	for _, pb := range p.branches {
		var rows *sparql.Results
		if pb.empty {
			rows = qplan.EmptyRelation(pb.br.Vars())
		} else {
			t2 := time.Now()
			exCtx, exSpan := obs.StartSpan(ctx, "execution")
			var err error
			rows, err = e.execute(exCtx, pb.br, cloneSubqueries(pb.sqs), prof)
			exSpan.End()
			prof.Execution += time.Since(t2)
			if err != nil {
				return nil, err
			}
		}
		if all == nil {
			all = rows
		} else {
			all = qplan.UnionRelations(all, rows)
		}
	}
	return qplan.Finalize(p.query, all)
}

// ExecutePlanStream executes a plan and delivers solution rows to emit as
// they become available — the row-callback entry point a serving layer uses
// to flush results to the wire incrementally. emit receives one solution at
// a time and returns false to stop the query.
//
// When the plan is streamable (single subquery, no global join, no modifier
// needing the complete result — the QueryEarly rules), each endpoint's
// answers are forwarded the moment that endpoint responds and the returned
// bool is true; a solution present at several endpoints may then be
// delivered more than once (bag semantics). Any other plan executes fully
// and emits the final rows in order, returning false. Cancelling ctx (e.g.
// on client disconnect) stops endpoint work through the usual context
// discipline. ASK plans are rejected — a boolean has no rows to stream.
func (e *Engine) ExecutePlanStream(ctx context.Context, p *Plan, emit func(map[string]rdf.Term) bool) (bool, *Profile, error) {
	start := time.Now()
	prof := &Profile{}
	ctx = resilience.WithWarnings(ctx)
	defer func() {
		prof.Warnings = append(prof.Warnings, resilience.TakeWarnings(ctx)...)
	}()
	p.summarize(prof)

	if !p.streamable() {
		res, err := e.finishPlan(ctx, p, prof)
		if err != nil {
			return false, prof, err
		}
		if res.IsBoolean {
			return false, prof, fmt.Errorf("lusail: streaming does not support ASK queries")
		}
		prof.Total = time.Since(start)
		for i := range res.Rows {
			if !emit(res.Binding(i)) {
				break
			}
		}
		return false, prof, nil
	}

	pb := p.branches[0]
	if pb.empty {
		prof.Total = time.Since(start)
		return true, prof, nil // provably empty: nothing to emit
	}
	err := e.streamSubquery(ctx, p.query, pb, emit)
	prof.Total = time.Since(start)
	return true, prof, err
}

// streamSubquery evaluates the plan's single subquery with one request per
// endpoint, forwarding rows as each response lands.
func (e *Engine) streamSubquery(ctx context.Context, q *sparql.Query, pb *plannedBranch, emit func(map[string]rdf.Term) bool) error {
	sq := pb.sqs[0]
	br := pb.br
	vars := q.ProjectedVars()
	var stopped atomic.Bool
	var emitMu sync.Mutex
	emitted := 0
	limit := q.Limit

	queryText := sq.Query(nil).String()
	runErr := e.pool.ForEachGated(ctx, sq.Sources, e.gate(),
		e.onRejectDegrade(ctx, client.PhaseSubquery, sq.Sources), func(i int) error {
			if stopped.Load() {
				return nil
			}
			res, err := e.queryEndpoint(ctx, client.PhaseSubquery, sq.Sources[i], queryText)
			if err != nil {
				if e.degrade(ctx, client.PhaseSubquery, sq.Sources[i], err) {
					return nil
				}
				return err
			}
			rel := qplan.ApplyFilters(res, br.Filters)
			emitMu.Lock()
			defer emitMu.Unlock()
			for r := range rel.Rows {
				if stopped.Load() {
					return nil
				}
				if limit >= 0 && emitted >= limit {
					stopped.Store(true)
					return nil
				}
				b := rel.Binding(r)
				out := make(map[string]rdf.Term, len(vars))
				for _, v := range vars {
					if t, ok := b[v]; ok {
						out[v] = t
					}
				}
				emitted++
				if !emit(out) {
					stopped.Store(true)
					return nil
				}
			}
			return nil
		})
	if runErr != nil && !stopped.Load() {
		return runErr
	}
	return nil
}
