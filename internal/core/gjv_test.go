package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"lusail/internal/qplan"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

func TestJoinEntitiesRoles(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
		?s <http://p1> ?x .
		?x <http://p2> ?o .
		?s <http://p3> ?o .
		?s ?pv ?z .
	}`)
	vars := joinEntities(q.Where.TriplePatterns())
	byName := map[string]varRole{}
	for _, v := range vars {
		byName[v.name] = v
	}
	s := byName["s"]
	if !reflect.DeepEqual(s.subjIdx, []int{0, 2, 3}) {
		t.Errorf("s.subjIdx = %v", s.subjIdx)
	}
	x := byName["x"]
	if !reflect.DeepEqual(x.objIdx, []int{0}) || !reflect.DeepEqual(x.subjIdx, []int{1}) {
		t.Errorf("x roles = %+v", x)
	}
	o := byName["o"]
	if !reflect.DeepEqual(o.objIdx, []int{1, 2}) {
		t.Errorf("o.objIdx = %v", o.objIdx)
	}
	if _, ok := byName["z"]; ok {
		t.Error("z appears once and is not a join entity")
	}
	if _, ok := byName["pv"]; ok {
		t.Error("pv appears once and is not a join entity")
	}
}

func TestMakeCheckShape(t *testing.T) {
	tpOuter := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://pi"), O: sparql.Var("v")}
	tpInner := sparql.TriplePattern{S: sparql.Var("v"), P: sparql.IRI("http://pj"), O: sparql.Var("c")}
	typeOf := map[string]sparql.TriplePattern{
		"v": {S: sparql.Var("v"), P: sparql.IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), O: sparql.IRI("http://T")},
	}
	cq := makeCheck("v", tpOuter, tpInner, typeOf, []string{"ep1"})
	// The check query must parse and have the Figure 5 structure.
	q, err := sparql.Parse(cq.text)
	if err != nil {
		t.Fatalf("check query does not parse: %v\n%s", err, cq.text)
	}
	if q.Limit != 1 {
		t.Errorf("check query LIMIT = %d, want 1", q.Limit)
	}
	if got := q.ProjectedVars(); !reflect.DeepEqual(got, []string{"v"}) {
		t.Errorf("check query projects %v", got)
	}
	// v is the *object* of the outer pattern here, so the rdf:type
	// narrowing must NOT be applied (it could hide remote witnesses).
	if strings.Contains(cq.text, "rdf-syntax-ns#type") {
		t.Errorf("type narrowing applied to object-position outer:\n%s", cq.text)
	}
	hasNotExists := false
	for _, el := range q.Where.Elements {
		if f, ok := el.(sparql.Filter); ok {
			if ex, ok := f.Expr.(sparql.ExprExists); ok && ex.Not {
				hasNotExists = true
				if len(ex.Group.Elements) != 1 {
					t.Error("NOT EXISTS should wrap exactly the sub-select")
				}
			}
		}
	}
	if !hasNotExists {
		t.Errorf("check query lacks NOT EXISTS:\n%s", cq.text)
	}
}

func TestMakeCheckTypeNarrowingForSubjectOuter(t *testing.T) {
	tpOuter := sparql.TriplePattern{S: sparql.Var("v"), P: sparql.IRI("http://pi"), O: sparql.Var("a")}
	tpInner := sparql.TriplePattern{S: sparql.Var("v"), P: sparql.IRI("http://pj"), O: sparql.Var("b")}
	typeOf := map[string]sparql.TriplePattern{
		"v": {S: sparql.Var("v"), P: sparql.IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), O: sparql.IRI("http://T")},
	}
	cq := makeCheck("v", tpOuter, tpInner, typeOf, []string{"ep1"})
	if !strings.Contains(cq.text, "rdf-syntax-ns#type") {
		t.Errorf("type narrowing missing for subject-position outer:\n%s", cq.text)
	}
}

func TestRenameExceptAvoidsCapture(t *testing.T) {
	tp := sparql.TriplePattern{S: sparql.Var("v"), P: sparql.Var("p"), O: sparql.Var("c")}
	got := renameExcept(tp, "v")
	if got.S.Var != "v" {
		t.Errorf("kept variable renamed: %v", got.S)
	}
	if got.P.Var == "p" || got.O.Var == "c" {
		t.Errorf("other variables not renamed: %v", got)
	}
}

func TestCheckCache(t *testing.T) {
	c := newCheckCache()
	if _, ok := c.get("k"); ok {
		t.Error("empty cache hit")
	}
	c.put("k", true)
	v, ok := c.get("k")
	if !ok || !v {
		t.Error("cache miss after put")
	}
	if c.len() != 1 {
		t.Errorf("len = %d", c.len())
	}
	c.clear()
	if c.len() != 0 {
		t.Error("clear failed")
	}
}

func TestTypeConstraints(t *testing.T) {
	q := sparql.MustParse(`
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT * WHERE {
			?a rdf:type <http://T1> .
			?a rdf:type <http://T2> .
			?b rdf:type ?cls .
			?a <http://p> ?b .
		}`)
	tc := typeConstraints(q.Where.TriplePatterns())
	if _, ok := tc["a"]; !ok {
		t.Error("missing type constraint for ?a")
	}
	if tc["a"].O.Term.Value != "http://T1" {
		t.Errorf("should keep the first constraint, got %v", tc["a"].O)
	}
	if _, ok := tc["b"]; ok {
		t.Error("?b's type is a variable and must not constrain checks")
	}
}

func TestGJVDifferentSourcesShortCircuit(t *testing.T) {
	// Patterns with different source sets force a GJV without any check
	// queries (Algorithm 1 lines 8-11).
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	patterns := []sparql.TriplePattern{
		{S: sparql.Var("x"), P: sparql.IRI("http://p1"), O: sparql.Var("y")},
		{S: sparql.Var("y"), P: sparql.IRI("http://p2"), O: sparql.Var("z")},
	}
	sources := [][]string{{"ep1"}, {"ep2"}}
	res, err := e.detectGJVs(context.Background(), patterns, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsGlobal("y") {
		t.Error("y should be global (different sources)")
	}
	if res.ChecksIssued != 0 {
		t.Errorf("no checks should be issued, got %d", res.ChecksIssued)
	}
}

func TestGJVPredicateVariableConservative(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	patterns := []sparql.TriplePattern{
		{S: sparql.Var("x"), P: sparql.Var("p"), O: sparql.Var("y")},
		{S: sparql.Var("z"), P: sparql.Var("p"), O: sparql.Var("w")},
	}
	sources := [][]string{{"ep1", "ep2"}, {"ep1", "ep2"}}
	res, err := e.detectGJVs(context.Background(), patterns, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsGlobal("p") {
		t.Error("predicate-position join variable should be conservatively global")
	}
}

func TestDecomposeSingleGJVSplitsPatterns(t *testing.T) {
	eps, _ := paperFederation(false)
	e := newEngine(t, eps, DefaultOptions())
	q := sparql.MustParse(`
		PREFIX ub: <http://lubm.org/ub#>
		SELECT * WHERE {
			?p ub:PhDDegreeFrom ?u .
			?u ub:address ?a .
		}`)
	branches, err := qplan.Normalize(q)
	if err != nil {
		t.Fatal(err)
	}
	br := branches[0]
	ctx := context.Background()
	sources := make([][]string, len(br.Patterns))
	for i, tp := range br.Patterns {
		sources[i], err = e.sel.RelevantSources(ctx, tp)
		if err != nil {
			t.Fatal(err)
		}
	}
	stats, err := e.collectStats(ctx, br, sources)
	if err != nil {
		t.Fatal(err)
	}
	gjv, err := e.detectGJVs(ctx, br.Patterns, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !gjv.IsGlobal("u") {
		t.Fatalf("u should be global, got %v", gjv.GlobalVars())
	}
	sqs := e.decompose(br, sources, gjv, stats)
	if len(sqs) != 2 {
		t.Fatalf("subqueries = %d, want 2: %v", len(sqs), sqs)
	}
	for _, sq := range sqs {
		if len(sq.Patterns) != 1 {
			t.Errorf("subquery %s should hold one pattern", sq)
		}
	}
}

func TestSubqueryQueryRendering(t *testing.T) {
	sq := &Subquery{
		Patterns: []sparql.TriplePattern{
			{S: sparql.Var("s"), P: sparql.IRI("http://p"), O: sparql.Var("o")},
		},
		Sources: []string{"ep1"},
	}
	q := sq.Query(nil)
	if !q.Distinct {
		t.Error("subquery should request DISTINCT")
	}
	text := q.String()
	if _, err := sparql.Parse(text); err != nil {
		t.Errorf("subquery text does not parse: %v\n%s", err, text)
	}
	// With a VALUES block attached.
	vals := &sparql.InlineData{Vars: []string{"s"}, Rows: [][]rdf.Term{{rdf.NewIRI("http://a")}}}
	text = sq.Query(vals).String()
	if !strings.Contains(text, "VALUES") {
		t.Errorf("bound query lacks VALUES:\n%s", text)
	}
	if _, err := sparql.Parse(text); err != nil {
		t.Errorf("bound subquery text does not parse: %v\n%s", err, text)
	}
}
