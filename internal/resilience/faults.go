package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// ErrInjected is the cause of every failure produced by fault injection;
// test with errors.Is. It never escapes a healthy deployment — only
// endpoints wrapped by WithFaults can return it.
var ErrInjected = errors.New("resilience: injected fault")

// FaultSpec describes the fault behavior of one endpoint under injection.
// All randomness derives from Seed through a PCG stream, so a given spec
// produces the same request-by-request fault sequence on every run —
// chaos tests assert exact outcomes, not probabilities.
type FaultSpec struct {
	// ErrorRate is the fraction of requests, in [0, 1], that fail
	// immediately with an error wrapping ErrInjected.
	ErrorRate float64
	// HangRate is the fraction of requests, in [0, 1], that hang until the
	// context is cancelled. Unlike Hang, it leaves the rest of the traffic
	// healthy — the regime where hedging pays off.
	HangRate float64
	// Hang, when true, makes every request block until context
	// cancellation: the endpoint is up but never answers. Overrides
	// ErrorRate and HangRate.
	Hang bool
	// SlowFactor >= 1 multiplies the observed service time of requests that
	// are not failed or hung, by sleeping (SlowFactor-1)× the inner
	// endpoint's latency after it answers. 0 means no slowdown.
	SlowFactor float64
	// Seed initializes the deterministic fault stream.
	Seed uint64
}

// Faulty wraps an Endpoint and injects faults per a FaultSpec. It is the
// deterministic chaos harness used by the resilience tests and the bench's
// `faults` experiment.
type Faulty struct {
	inner client.Endpoint

	mu   sync.Mutex
	spec FaultSpec
	rng  *rand.Rand

	injected *obs.Counter
}

// WithFaults wraps ep so that it misbehaves per spec. The endpoint keeps
// its name — fault injection is invisible to source selection and routing,
// exactly like a real endpoint going bad.
func WithFaults(ep client.Endpoint, spec FaultSpec) *Faulty {
	return &Faulty{
		inner: ep,
		spec:  spec,
		rng:   rand.New(rand.NewPCG(spec.Seed, 0x10541157)), // second word: arbitrary fixed stream id
		injected: obs.Default().Counter(obs.MetricFaultsInjected,
			"faults injected by the chaos harness per endpoint", obs.L("endpoint", ep.Name())),
	}
}

// Name implements client.Endpoint.
func (f *Faulty) Name() string { return f.inner.Name() }

// SetSpec replaces the fault behavior at runtime, so chaos tests can heal
// (or break) an endpoint mid-run — e.g. to exercise breaker recovery after
// an outage ends. The deterministic stream keeps its position across spec
// changes.
func (f *Faulty) SetSpec(spec FaultSpec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spec = spec
}

// Unwrap returns the wrapped endpoint, letting instrumentation helpers see
// through the fault layer.
func (f *Faulty) Unwrap() client.Endpoint { return f.inner }

type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultHang
)

// draw picks this request's fate (and the slow factor in effect) from the
// deterministic stream under one lock, so a concurrent SetSpec never tears
// a request's view of the spec. One draw per request keeps the sequence
// aligned across runs regardless of which fault fires.
func (f *Faulty) draw() (faultKind, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.spec.Hang {
		return faultHang, 0
	}
	u := f.rng.Float64()
	if u < f.spec.ErrorRate {
		return faultError, 0
	}
	if u < f.spec.ErrorRate+f.spec.HangRate {
		return faultHang, 0
	}
	return faultNone, f.spec.SlowFactor
}

// Query implements client.Endpoint.
func (f *Faulty) Query(ctx context.Context, query string) (*sparql.Results, error) {
	kind, slow := f.draw()
	switch kind {
	case faultError:
		f.injected.Inc()
		return nil, fmt.Errorf("endpoint %s: %w", f.inner.Name(), ErrInjected)
	case faultHang:
		f.injected.Inc()
		<-ctx.Done()
		return nil, ctx.Err()
	}
	start := time.Now()
	res, err := f.inner.Query(ctx, query)
	if err == nil && slow > 1 {
		extra := time.Duration(float64(time.Since(start)) * (slow - 1))
		select {
		case <-time.After(extra):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return res, err
}
