package resilience

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"lusail/internal/client"
	"lusail/internal/lint/leakcheck"
	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// scriptEP is a scriptable endpoint: fn decides each call's behavior by
// call index (0-based), so tests control exactly which attempt hangs,
// fails, or answers.
type scriptEP struct {
	name string
	mu   sync.Mutex
	n    int
	fn   func(call int, ctx context.Context) (*sparql.Results, error)
}

func (s *scriptEP) Name() string { return s.name }

func (s *scriptEP) Query(ctx context.Context, _ string) (*sparql.Results, error) {
	s.mu.Lock()
	call := s.n
	s.n++
	s.mu.Unlock()
	return s.fn(call, ctx)
}

func (s *scriptEP) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"default", DefaultConfig(), true},
		{"threshold too high", Config{FailureThreshold: 1.5}, false},
		{"negative window", Config{Window: -1}, false},
		{"negative cooldown", Config{Cooldown: -time.Second}, false},
		{"negative hedge delay", Config{HedgeMinDelay: -1}, false},
		{"hedge quantile 1", Config{HedgeQuantile: 1}, false},
		{"breakers only", Config{FailureThreshold: 0.5}, true},
		{"hedging only", Config{HedgeQuantile: 0.9}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNilManagerIsDisabled(t *testing.T) {
	var m *Manager
	ep := &scriptEP{name: "u0", fn: func(int, context.Context) (*sparql.Results, error) {
		return sparql.NewResults(nil), nil
	}}
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("nil manager Allow: %v", err)
	}
	if err := m.Gate().Allow("u0"); err != nil {
		t.Fatalf("nil manager Gate().Allow: %v", err)
	}
	m.Record("u0", time.Millisecond, nil) // must not panic
	m.SetProbeObserver(func(string, time.Duration) {})
	if _, ok := m.HedgeDelay("u0"); ok {
		t.Fatal("nil manager reports hedging active")
	}
	if st := m.State("u0"); st != Closed {
		t.Fatalf("nil manager State = %v, want Closed", st)
	}
	if _, err := m.Do(context.Background(), ep, "ASK {}"); err != nil {
		t.Fatalf("nil manager Do: %v", err)
	}
	if _, err := m.DoHedged(context.Background(), ep, "ASK {}"); err != nil {
		t.Fatalf("nil manager DoHedged: %v", err)
	}
	if got := ep.calls(); got != 2 {
		t.Fatalf("endpoint saw %d calls, want 2", got)
	}
	if NewManager(Config{}, nil) != nil {
		t.Fatal("NewManager with inactive config should return nil")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	leakcheck.Check(t)
	clock := time.Unix(0, 0)
	cfg := Config{
		FailureThreshold: 0.5,
		Window:           4,
		MinSamples:       4,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		now:              func() time.Time { return clock },
	}
	m := NewManager(cfg, obs.NewRegistry())
	boom := errors.New("boom")

	// Below MinSamples nothing trips, even at a 100% failure rate.
	for i := 0; i < 3; i++ {
		m.Record("u0", time.Millisecond, boom)
	}
	if st := m.State("u0"); st != Closed {
		t.Fatalf("state after 3 failures = %v, want Closed (MinSamples=4)", st)
	}
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("Allow while closed: %v", err)
	}

	// The fourth failure reaches MinSamples at 100% > 50%: open.
	m.Record("u0", time.Millisecond, boom)
	if st := m.State("u0"); st != Open {
		t.Fatalf("state after 4 failures = %v, want Open", st)
	}
	if err := m.Allow("u0"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow while open = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapses: one trial request is admitted, the next rejected.
	clock = clock.Add(2 * time.Second)
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("Allow after cooldown: %v", err)
	}
	if st := m.State("u0"); st != HalfOpen {
		t.Fatalf("state after cooldown = %v, want HalfOpen", st)
	}
	if err := m.Allow("u0"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second half-open trial = %v, want ErrBreakerOpen", err)
	}

	// Trial failure re-opens and restarts the cooldown.
	m.Record("u0", time.Millisecond, boom)
	if st := m.State("u0"); st != Open {
		t.Fatalf("state after failed trial = %v, want Open", st)
	}
	if err := m.Allow("u0"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow right after re-open = %v, want ErrBreakerOpen", err)
	}

	// Next cooldown, successful trial: closed with a clean window. A single
	// failure afterwards must not trip it again.
	clock = clock.Add(2 * time.Second)
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("Allow after second cooldown: %v", err)
	}
	m.Record("u0", time.Millisecond, nil)
	if st := m.State("u0"); st != Closed {
		t.Fatalf("state after successful trial = %v, want Closed", st)
	}
	m.Record("u0", time.Millisecond, boom)
	if st := m.State("u0"); st != Closed {
		t.Fatalf("clean window: one failure re-tripped the breaker (state %v)", st)
	}

	// Other endpoints are independent.
	if st := m.State("u1"); st != Closed {
		t.Fatalf("unrelated endpoint state = %v, want Closed", st)
	}
}

// TestGatedAdmissionSingleShot is the regression test for the pool-gate /
// Do double-admission bug: the gate's Allow must only peek — no open →
// half-open transition, no trial-slot claim — so the Do it admits can
// still claim the (single) trial slot at dispatch and close the breaker.
// When the gate claimed too, Do's own admission found the slot taken,
// rejected the request before it ran, and the breaker never left
// half-open.
func TestGatedAdmissionSingleShot(t *testing.T) {
	clock := time.Unix(0, 0)
	cfg := Config{
		FailureThreshold: 0.5,
		Window:           4,
		MinSamples:       2,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		now:              func() time.Time { return clock },
	}
	m := NewManager(cfg, obs.NewRegistry())
	boom := errors.New("boom")
	m.Record("u0", time.Millisecond, boom)
	m.Record("u0", time.Millisecond, boom)
	if st := m.State("u0"); st != Open {
		t.Fatalf("state after failures = %v, want Open", st)
	}
	if err := m.Gate().Allow("u0"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("gate during cooldown = %v, want ErrBreakerOpen", err)
	}

	clock = clock.Add(2 * time.Second)
	// The pool gate admits the task; peeking must neither transition the
	// breaker nor claim the trial slot — Do does both at dispatch.
	if err := m.Gate().Allow("u0"); err != nil {
		t.Fatalf("gate after cooldown: %v", err)
	}
	if st := m.State("u0"); st != Open {
		t.Fatalf("gate peek transitioned the breaker (state %v)", st)
	}
	ep := &scriptEP{name: "u0", fn: func(int, context.Context) (*sparql.Results, error) {
		return sparql.NewResults(nil), nil
	}}
	if _, err := m.Do(context.Background(), ep, "ASK {}"); err != nil {
		t.Fatalf("Do after gate admission = %v; admission was double-claimed", err)
	}
	if st := m.State("u0"); st != Closed {
		t.Fatalf("breaker did not recover through the gated path (state %v)", st)
	}
	if got := ep.calls(); got != 1 {
		t.Fatalf("endpoint saw %d calls, want 1 trial", got)
	}
}

// TestCancelledHalfOpenTrialReleasesSlot: a trial abandoned by query
// cancellation is neutral for endpoint health, but it must hand its
// half-open slot back so the next request can probe; a leaked slot leaves
// the breaker rejecting every future request for the endpoint.
func TestCancelledHalfOpenTrialReleasesSlot(t *testing.T) {
	clock := time.Unix(0, 0)
	cfg := Config{
		FailureThreshold: 0.5,
		Window:           4,
		MinSamples:       2,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		now:              func() time.Time { return clock },
	}
	m := NewManager(cfg, obs.NewRegistry())
	boom := errors.New("boom")
	m.Record("u0", time.Millisecond, boom)
	m.Record("u0", time.Millisecond, boom)
	clock = clock.Add(2 * time.Second)
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("Allow after cooldown: %v", err)
	}
	// The trial is cancelled mid-flight.
	m.Record("u0", time.Millisecond, context.Canceled)
	if st := m.State("u0"); st != HalfOpen {
		t.Fatalf("state after cancelled trial = %v, want HalfOpen", st)
	}
	if err := m.Allow("u0"); err != nil {
		t.Fatalf("Allow after cancelled trial = %v; the trial slot leaked", err)
	}
	m.Record("u0", time.Millisecond, nil)
	if st := m.State("u0"); st != Closed {
		t.Fatalf("state after successful retrial = %v, want Closed", st)
	}
}

func TestRecordCancellationIsNeutral(t *testing.T) {
	cfg := Config{FailureThreshold: 0.5, Window: 4, MinSamples: 2, Cooldown: time.Second}
	m := NewManager(cfg, obs.NewRegistry())
	for i := 0; i < 10; i++ {
		m.Record("u0", time.Millisecond, context.Canceled)
	}
	if st := m.State("u0"); st != Closed {
		t.Fatalf("cancelled requests tripped the breaker (state %v)", st)
	}
	// DeadlineExceeded, by contrast, is a real failure.
	m.Record("u0", time.Millisecond, context.DeadlineExceeded)
	m.Record("u0", time.Millisecond, context.DeadlineExceeded)
	if st := m.State("u0"); st != Open {
		t.Fatalf("deadline-exceeded requests did not trip the breaker (state %v)", st)
	}
}

func TestP2Quantile(t *testing.T) {
	for _, target := range []float64{0.5, 0.9, 0.99} {
		e := newP2(target)
		if _, ok := e.quantile(); ok {
			t.Fatalf("p=%v: quantile valid before any samples", target)
		}
		// A fixed permutation of 1..2000 from a seeded PCG stream.
		rng := rand.New(rand.NewPCG(7, 7))
		xs := rng.Perm(2000)
		for _, x := range xs {
			e.observe(float64(x + 1))
		}
		q, ok := e.quantile()
		if !ok {
			t.Fatalf("p=%v: quantile invalid after 2000 samples", target)
		}
		want := target * 2000
		if q < want*0.93 || q > want*1.07 {
			t.Errorf("p=%v: estimate %.1f, want within 7%% of %.1f", target, q, want)
		}
		if e.count() != 2000 {
			t.Errorf("count = %d, want 2000", e.count())
		}
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() []bool {
		ep := &scriptEP{name: "u0", fn: func(int, context.Context) (*sparql.Results, error) {
			return sparql.NewResults(nil), nil
		}}
		f := WithFaults(ep, FaultSpec{ErrorRate: 0.4, Seed: 42})
		var outcomes []bool
		for i := 0; i < 200; i++ {
			_, err := f.Query(context.Background(), "ASK {}")
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("injected failure does not wrap ErrInjected: %v", err)
			}
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault streams diverge at request %d", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures < 50 || failures > 110 {
		t.Errorf("ErrorRate 0.4 over 200 requests injected %d failures", failures)
	}
}

func TestFaultsHangBlocksUntilCancel(t *testing.T) {
	ep := &scriptEP{name: "u0", fn: func(int, context.Context) (*sparql.Results, error) {
		return sparql.NewResults(nil), nil
	}}
	f := WithFaults(ep, FaultSpec{Hang: true})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := f.Query(ctx, "ASK {}")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung request returned before cancellation: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hung request returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hung request did not return after cancellation")
	}
	if got := ep.calls(); got != 0 {
		t.Fatalf("hung request reached the inner endpoint (%d calls)", got)
	}
}

// warmHedging feeds the manager enough successful samples that hedging is
// active for ep with roughly the given latency estimate.
func warmHedging(m *Manager, ep string, lat time.Duration) {
	for i := 0; i < 16; i++ {
		m.Record(ep, lat, nil)
	}
}

func TestDoHedgedRescuesHungProbe(t *testing.T) {
	leakcheck.Check(t)
	cfg := Config{HedgeQuantile: 0.9, HedgeWarmup: 5, HedgeMinDelay: time.Millisecond}
	m := NewManager(cfg, obs.NewRegistry())
	warmHedging(m, "u0", 2*time.Millisecond)
	if _, ok := m.HedgeDelay("u0"); !ok {
		t.Fatal("hedging not active after warmup")
	}

	firstCancelled := make(chan struct{})
	ep := &scriptEP{name: "u0"}
	ep.fn = func(call int, ctx context.Context) (*sparql.Results, error) {
		if call == 0 {
			// First attempt hangs; it must be cancelled once the hedge wins.
			<-ctx.Done()
			close(firstCancelled)
			return nil, ctx.Err()
		}
		return sparql.NewResults(nil), nil
	}

	start := time.Now()
	res, err := m.DoHedged(context.Background(), ep, "ASK {}")
	elapsed := time.Since(start)
	if err != nil || res == nil {
		t.Fatalf("DoHedged = %v, %v; want rescued success", res, err)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged probe took %v; the hedge did not race the hang", elapsed)
	}
	select {
	case <-firstCancelled:
	case <-time.After(time.Second):
		t.Fatal("losing attempt was not cancelled after the hedge won")
	}
	if got := ep.calls(); got != 2 {
		t.Fatalf("endpoint saw %d attempts, want 2", got)
	}
}

func TestDoHedgedFastResponseNeverHedges(t *testing.T) {
	cfg := Config{HedgeQuantile: 0.9, HedgeWarmup: 5, HedgeMinDelay: 50 * time.Millisecond}
	m := NewManager(cfg, obs.NewRegistry())
	warmHedging(m, "u0", time.Millisecond)
	ep := &scriptEP{name: "u0", fn: func(int, context.Context) (*sparql.Results, error) {
		return sparql.NewResults(nil), nil
	}}
	if _, err := m.DoHedged(context.Background(), ep, "ASK {}"); err != nil {
		t.Fatalf("DoHedged: %v", err)
	}
	if got := ep.calls(); got != 1 {
		t.Fatalf("fast probe was hedged anyway (%d attempts)", got)
	}
}

func TestDoHedgedPropagatesQueryCancellation(t *testing.T) {
	leakcheck.Check(t)
	cfg := Config{HedgeQuantile: 0.9, HedgeWarmup: 5, HedgeMinDelay: time.Millisecond}
	m := NewManager(cfg, obs.NewRegistry())
	warmHedging(m, "u0", time.Millisecond)
	ep := &scriptEP{name: "u0", fn: func(_ int, ctx context.Context) (*sparql.Results, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := m.DoHedged(ctx, ep, "ASK {}"); !errors.Is(err, context.Canceled) {
		t.Fatalf("DoHedged under query cancellation = %v, want context.Canceled", err)
	}
}

func TestWarningsSink(t *testing.T) {
	// Without a sink, Warn is a no-op and TakeWarnings returns nil.
	bare := context.Background()
	Warn(bare, Warning{Endpoint: "u0", Phase: client.PhaseSubquery, Message: "lost"})
	if ws := TakeWarnings(bare); ws != nil {
		t.Fatalf("TakeWarnings without sink = %v, want nil", ws)
	}

	ctx := WithWarnings(bare)
	Warn(ctx, Warning{Endpoint: "u0", Phase: client.PhaseSubquery, Message: "lost"})
	Warn(ctx, Warning{Endpoint: "u1", Phase: client.PhaseCount, Message: "unknown"})
	ws := TakeWarnings(ctx)
	if len(ws) != 2 || ws[0].Endpoint != "u0" || ws[1].Phase != client.PhaseCount {
		t.Fatalf("TakeWarnings = %+v", ws)
	}
	if again := TakeWarnings(ctx); again != nil {
		t.Fatalf("second TakeWarnings = %v, want drained nil", again)
	}
}
