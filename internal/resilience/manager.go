package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"lusail/internal/client"
	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// Manager holds the per-endpoint resilience state — circuit breaker and
// latency-quantile estimator — and mediates every remote request the engine
// makes. A nil *Manager is valid and means "resilience disabled": Allow
// admits everything, Do calls the endpoint directly, and DoHedged never
// hedges. That keeps call sites free of nil checks, mirroring the obs
// package's nil-safe spans.
type Manager struct {
	cfg Config
	reg *obs.Registry

	mu  sync.Mutex
	eps map[string]*epState

	hedges    *obs.Counter
	hedgeWins *obs.Counter

	// probeObs, when set, observes the wall-clock duration of every Do /
	// DoHedged call (after hedging, so it sees the latency the caller
	// experienced). The bench's faults experiment uses it to report probe
	// p50/p99 with hedging on and off.
	probeObs func(endpoint string, d time.Duration)
}

type epState struct {
	br *breaker

	mu      sync.Mutex
	lat     *p2 // successful-request latency, seconds
	samples int
}

// NewManager returns a Manager for the given config, or nil when the config
// enables nothing, so callers can thread the result around unconditionally.
// Metrics are registered on reg (obs.Default() when nil).
func NewManager(cfg Config, reg *obs.Registry) *Manager {
	if !cfg.Active() {
		return nil
	}
	if reg == nil {
		reg = obs.Default()
	}
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:       cfg,
		reg:       reg,
		eps:       make(map[string]*epState),
		hedges:    reg.Counter(obs.MetricHedges, "probe requests that started a hedge"),
		hedgeWins: reg.Counter(obs.MetricHedgeWins, "hedged probes where the hedge finished first"),
	}
}

// SetProbeObserver installs fn to observe the caller-experienced duration of
// every Do/DoHedged call. Call before issuing queries; not synchronized with
// in-flight requests.
func (m *Manager) SetProbeObserver(fn func(endpoint string, d time.Duration)) {
	if m != nil {
		m.probeObs = fn
	}
}

func (m *Manager) state(name string) *epState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.eps[name]
	if !ok {
		st = &epState{lat: newP2(m.cfg.HedgeQuantile)}
		if m.cfg.FailureThreshold > 0 {
			st.br = newBreaker(m.cfg, name, m.reg)
		}
		m.eps[name] = st
	}
	return st
}

// Allow claims admission for a request to the named endpoint dispatched
// now, returning an error wrapping ErrBreakerOpen when its breaker
// rejects. A successful Allow may hold the endpoint's half-open trial
// slot, so it must be paired with exactly one Record (which releases the
// slot whatever the outcome, cancellation included). Do and DoHedged keep
// that pairing themselves; use Gate() — which only peeks — for pool
// admission, never Allow, or gated requests would claim twice.
func (m *Manager) Allow(name string) error {
	if m == nil || m.cfg.FailureThreshold <= 0 {
		return nil
	}
	if br := m.state(name).br; br != nil {
		return br.allow()
	}
	return nil
}

// Gate is the Manager's non-claiming admission view for the ERH pool. Its
// Allow only peeks at breaker state: no open → half-open transition, no
// trial-slot claim. The claiming admission happens inside Do/DoHedged when
// the request actually dispatches, so a task queued behind a saturated
// pool never strands the trial quota, and gate-then-Do admits exactly
// once. The zero Gate (and a nil Manager's Gate) admits everything.
type Gate struct{ m *Manager }

// Gate returns the pool-admission view of m; valid on a nil Manager.
func (m *Manager) Gate() Gate { return Gate{m} }

// Allow implements the ERH pool's admission check. A request admitted here
// is re-checked — and claimed — by Do/DoHedged at dispatch, so a breaker
// that trips (or runs out of trial slots) while the task waits for a pool
// slot still rejects it at the last moment.
func (g Gate) Allow(name string) error {
	m := g.m
	if m == nil || m.cfg.FailureThreshold <= 0 {
		return nil
	}
	if br := m.state(name).br; br != nil {
		return br.peek()
	}
	return nil
}

// State returns the named endpoint's breaker state (Closed when breakers
// are disabled or the endpoint has never been seen).
func (m *Manager) State(name string) BreakerState {
	if m == nil || m.cfg.FailureThreshold <= 0 {
		return Closed
	}
	m.mu.Lock()
	st, ok := m.eps[name]
	m.mu.Unlock()
	if !ok || st.br == nil {
		return Closed
	}
	return st.br.currentState()
}

// Record feeds one request outcome into the endpoint's breaker and latency
// estimator. Context cancellation is neutral: a request abandoned because
// its sibling hedge won (or the whole query was cancelled) says nothing
// about endpoint health — but it still reaches the breaker, because a
// cancelled request may hold the half-open trial slot its Allow claimed,
// and that slot must be released. Deadline expiry, by contrast, is exactly
// the slow endpoint the breaker exists to catch, so it counts as a
// failure.
func (m *Manager) Record(name string, d time.Duration, err error) {
	if m == nil {
		return
	}
	o := success
	switch {
	case errors.Is(err, context.Canceled):
		o = neutral
	case err != nil:
		o = failure
	}
	st := m.state(name)
	if st.br != nil {
		st.br.record(o)
	}
	if o == success && m.cfg.HedgeQuantile > 0 {
		st.mu.Lock()
		st.lat.observe(d.Seconds())
		st.samples++
		st.mu.Unlock()
	}
}

// HedgeDelay returns how long a probe to the named endpoint should wait
// before a second request races it, and whether enough latency samples
// exist for hedging to be active there.
func (m *Manager) HedgeDelay(name string) (time.Duration, bool) {
	if m == nil || m.cfg.HedgeQuantile <= 0 {
		return 0, false
	}
	st := m.state(name)
	st.mu.Lock()
	defer st.mu.Unlock()
	q, ok := st.lat.quantile()
	if !ok || st.samples < m.cfg.HedgeWarmup {
		return 0, false
	}
	d := time.Duration(q * float64(time.Second))
	if d < m.cfg.HedgeMinDelay {
		d = m.cfg.HedgeMinDelay
	}
	return d, true
}

// Do runs one query through the resilience layer: breaker check, the
// request itself, and outcome recording. It is the non-hedged path, for
// requests that are not idempotent probes (subqueries, bound joins) or
// whose result streams are too large to duplicate cheaply.
func (m *Manager) Do(ctx context.Context, ep client.Endpoint, query string) (*sparql.Results, error) {
	if m == nil {
		return ep.Query(ctx, query)
	}
	if err := m.Allow(ep.Name()); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := ep.Query(ctx, query)
	d := time.Since(start)
	m.Record(ep.Name(), d, err)
	if m.probeObs != nil {
		m.probeObs(ep.Name(), d)
	}
	return res, err
}

// DoHedged runs an idempotent probe (ASK, COUNT, LIMIT-1 check) with tail
// hedging: if the first request outlives the endpoint's adaptive latency
// quantile, a second identical request races it and the first response —
// success or failure — wins, cancelling the other. Hedging only triggers
// after the per-endpoint warmup, so cold endpoints behave exactly like Do.
//
// Only the winning attempt's outcome is recorded against the breaker; the
// loser is cancelled, and Record treats cancellation as neutral.
func (m *Manager) DoHedged(ctx context.Context, ep client.Endpoint, query string) (*sparql.Results, error) {
	if m == nil {
		return ep.Query(ctx, query)
	}
	delay, hedgeable := m.HedgeDelay(ep.Name())
	if !hedgeable {
		return m.Do(ctx, ep, query)
	}
	if err := m.Allow(ep.Name()); err != nil {
		return nil, err
	}

	type attempt struct {
		res    *sparql.Results
		err    error
		d      time.Duration
		hedged bool
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the maximum number of attempts so the loser's send never
	// blocks after the winner returns.
	ch := make(chan attempt, 2)
	launch := func(hedged bool) {
		go func() {
			start := time.Now()
			res, err := ep.Query(actx, query)
			ch <- attempt{res: res, err: err, d: time.Since(start), hedged: hedged}
		}()
	}

	start := time.Now()
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	outstanding := 1
	hedgeStarted := false
	for {
		select {
		case <-timer.C:
			if !hedgeStarted {
				hedgeStarted = true
				m.hedges.Inc()
				if sp := obs.FromContext(ctx); sp != nil {
					sp.SetAttr("hedged", ep.Name())
				}
				outstanding++
				launch(true)
			}
		case a := <-ch:
			// Ignore attempts that lost to a cancellation — unless this is
			// the last attempt standing, in which case its outcome (likely
			// ctx.Err()) is the answer.
			if errors.Is(a.err, context.Canceled) && ctx.Err() == nil && outstanding > 1 {
				outstanding--
				continue
			}
			cancel()
			total := time.Since(start)
			m.Record(ep.Name(), a.d, a.err)
			if m.probeObs != nil {
				m.probeObs(ep.Name(), total)
			}
			if a.hedged {
				m.hedgeWins.Inc()
			}
			return a.res, a.err
		}
	}
}
