package resilience

// p2 is the P² (Jain & Chlamtac, CACM 1985) streaming estimator of a single
// quantile. It keeps five markers whose heights approximate the quantile
// without storing observations, which is what makes per-endpoint latency
// quantiles affordable on every probe. Not safe for concurrent use; the
// Manager guards each instance with its endpoint's mutex.
type p2 struct {
	p     float64    // target quantile, e.g. 0.9
	n     int        // observations so far
	q     [5]float64 // marker heights
	pos   [5]int     // marker positions (1-based, as in the paper)
	want  [5]float64 // desired marker positions
	delta [5]float64 // desired position increments per observation
}

func newP2(p float64) *p2 {
	e := &p2{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.delta = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// observe feeds one sample.
func (e *p2) observe(x float64) {
	if e.n < 5 {
		// Insertion-sort the first five samples into the marker heights.
		i := e.n
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.n++
		if e.n == 5 {
			for j := range e.pos {
				e.pos[j] = j + 1
			}
		}
		return
	}

	// Find the cell k such that q[k] <= x < q[k+1], adjusting extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.delta[i]
	}
	e.n++

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			var sign int
			if d >= 0 {
				sign = 1
			} else {
				sign = -1
			}
			// Try the parabolic (P²) formula; fall back to linear if it
			// would push the marker out of order.
			h := e.parabolic(i, sign)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *p2) parabolic(i, d int) float64 {
	df := float64(d)
	n0, n1, n2 := float64(e.pos[i-1]), float64(e.pos[i]), float64(e.pos[i+1])
	return e.q[i] + df/(n2-n0)*
		((n1-n0+df)*(e.q[i+1]-e.q[i])/(n2-n1)+
			(n2-n1-df)*(e.q[i]-e.q[i-1])/(n1-n0))
}

func (e *p2) linear(i, d int) float64 {
	df := float64(d)
	return e.q[i] + df*(e.q[i+d]-e.q[i])/(float64(e.pos[i+d])-float64(e.pos[i]))
}

// quantile returns the current estimate; ok is false until five samples
// have been observed.
func (e *p2) quantile() (v float64, ok bool) {
	if e.n < 5 {
		return 0, false
	}
	return e.q[2], true
}

// count returns the number of samples observed.
func (e *p2) count() int { return e.n }
