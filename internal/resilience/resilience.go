// Package resilience is the fault-tolerance layer of the federated engine.
// Lusail's evaluation assumes every endpoint answers every ASK/COUNT/check/
// subquery request; real decentralized deployments (the public endpoints of
// PVLDB 11(4) §6) are slow, flaky, and rate-limited. This package supplies
// the three mechanisms FedX- and ANAPSID-style engines grew to survive
// them, behind one Manager that the engine threads through every remote
// request:
//
//   - Per-endpoint circuit breakers (closed → open → half-open) driven by a
//     failure-rate sliding window. The ERH pool consults the breaker before
//     dispatching a task, so requests to a broken endpoint are rejected
//     without occupying a worker slot or waiting out a timeout.
//   - Hedged requests for idempotent probes (ASK, COUNT, LIMIT-1 check
//     queries): when a probe outlives an adaptive per-endpoint latency
//     quantile (a P² estimate fed from observed request timings), a second
//     identical request races it and the first response wins, cutting tail
//     latency against endpoints with occasional hiccups.
//   - Deterministic fault injection (WithFaults) for chaos tests and the
//     `faults` bench experiment.
//
// Partial-results degradation (Options.OnEndpointFailure = Degrade) lives
// in package core, but its decisions rest on the typed errors and breaker
// state this package produces. All breaker/hedge decisions emit obs
// counters and trace-span attributes so EXPLAIN shows what the resilience
// layer did.
package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lusail/internal/obs"
)

// ErrBreakerOpen is the sentinel cause of requests rejected by an open
// circuit breaker; test with errors.Is. Rejections are instantaneous — no
// network traffic happens — so callers in Degrade mode can skip the
// endpoint cheaply, and callers in Fail mode surface it as an endpoint
// failure.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed admits all requests (the healthy state).
	Closed BreakerState = iota
	// Open rejects all requests until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of trial requests; one success
	// closes the breaker, one failure re-opens it.
	HalfOpen
)

// String returns the conventional lowercase label.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// Config tunes the resilience layer. The zero value disables everything
// (no breakers, no hedging), preserving the engine's historical fail-fast
// behavior; DefaultConfig returns the recommended production settings.
type Config struct {
	// FailureThreshold is the failure rate in the sliding window at or
	// above which the breaker opens. <= 0 disables circuit breakers
	// entirely; otherwise it must be in (0, 1].
	FailureThreshold float64
	// Window is the number of most recent requests per endpoint over which
	// the failure rate is computed (default 20).
	Window int
	// MinSamples is the minimum number of windowed requests before the
	// failure rate can trip the breaker (default 5) — one early failure
	// must not open a breaker.
	MinSamples int
	// Cooldown is how long an open breaker rejects before moving to
	// half-open (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent trial requests in half-open
	// (default 1).
	HalfOpenProbes int

	// HedgeQuantile is the per-endpoint latency quantile a probe must
	// outlive before a second identical request races it. <= 0 disables
	// hedging; otherwise it must be in (0, 1). 0.9 is the classic
	// tail-at-scale setting.
	HedgeQuantile float64
	// HedgeMinDelay floors the adaptive hedge delay so very fast endpoints
	// do not double every probe (default 1ms).
	HedgeMinDelay time.Duration
	// HedgeWarmup is the number of latency samples required per endpoint
	// before hedging activates there (default 8; minimum 5 — the P²
	// estimator needs 5 samples to initialize).
	HedgeWarmup int

	// now is a test clock hook; nil means time.Now.
	now func() time.Time
}

// DefaultConfig returns the recommended resilience settings: breakers at a
// 50% failure rate over a 20-request window with a 5s cooldown, and hedging
// at the p90 latency quantile.
func DefaultConfig() Config {
	return Config{
		FailureThreshold: 0.5,
		Window:           20,
		MinSamples:       5,
		Cooldown:         5 * time.Second,
		HalfOpenProbes:   1,
		HedgeQuantile:    0.9,
		HedgeMinDelay:    time.Millisecond,
		HedgeWarmup:      8,
	}
}

// Validate rejects configurations that cannot mean anything: negative
// timeouts and out-of-range thresholds. A zero Config is valid (everything
// disabled).
func (c Config) Validate() error {
	if c.FailureThreshold > 1 {
		return fmt.Errorf("resilience: FailureThreshold %v out of range (0, 1]", c.FailureThreshold)
	}
	if c.Window < 0 || c.MinSamples < 0 || c.HalfOpenProbes < 0 || c.HedgeWarmup < 0 {
		return errors.New("resilience: Window, MinSamples, HalfOpenProbes, and HedgeWarmup must be >= 0")
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("resilience: negative Cooldown %v", c.Cooldown)
	}
	if c.HedgeMinDelay < 0 {
		return fmt.Errorf("resilience: negative HedgeMinDelay %v", c.HedgeMinDelay)
	}
	if c.HedgeQuantile >= 1 {
		return fmt.Errorf("resilience: HedgeQuantile %v out of range (0, 1)", c.HedgeQuantile)
	}
	return nil
}

// Active reports whether any resilience mechanism is enabled.
func (c Config) Active() bool { return c.FailureThreshold > 0 || c.HedgeQuantile > 0 }

// withDefaults fills unset tuning knobs with their documented defaults.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = time.Millisecond
	}
	if c.HedgeWarmup < 5 {
		c.HedgeWarmup = 8
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// outcome classifies one completed request for the breaker. neutral marks
// a request abandoned mid-flight (the query was cancelled, or a hedge
// sibling won): it says nothing about endpoint health, but it must still
// release the half-open trial slot the request may have been holding —
// otherwise a single cancelled trial wedges the breaker in half-open
// forever.
type outcome int

const (
	success outcome = iota
	failure
	neutral
)

// breaker is one endpoint's circuit breaker: a failure-rate sliding window
// in the closed state, a cooldown timer in the open state, and a bounded
// trial quota in half-open.
type breaker struct {
	cfg Config

	mu        sync.Mutex
	state     BreakerState
	window    []bool // ring buffer: true = failure
	idx       int    // next write position
	filled    int    // observations currently in the window
	failures  int    // failures currently in the window
	openedAt  time.Time
	trialsOut int // half-open trial requests in flight

	opens    *obs.Counter
	rejects  *obs.Counter
	stateGge *obs.Gauge
}

func newBreaker(cfg Config, name string, reg *obs.Registry) *breaker {
	label := obs.L("endpoint", name)
	return &breaker{
		cfg:      cfg,
		window:   make([]bool, cfg.Window),
		opens:    reg.Counter(obs.MetricBreakerOpens, "circuit breaker transitions to open per endpoint", label),
		rejects:  reg.Counter(obs.MetricBreakerRejections, "requests rejected by an open breaker per endpoint", label),
		stateGge: reg.Gauge(obs.MetricBreakerState, "breaker state per endpoint (0 closed, 1 open, 2 half-open)", label),
	}
}

// peek reports whether a request to this endpoint would currently be
// admitted, without claiming anything: no open → half-open transition, no
// trial slot. The ERH pool gate uses it to skip tasks for broken endpoints
// before they occupy a worker slot; the claiming admission (allow) happens
// at dispatch time inside Manager.Do / DoHedged. Peeking and claiming must
// stay separate operations — if the gate claimed, every gated request
// would claim twice (gate, then Do), and with HalfOpenProbes=1 the second
// claim would be rejected before the trial ever ran, wedging the breaker
// in half-open permanently.
func (b *breaker) peek() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		return nil // cooldown over: ripe for a trial; allow() transitions
	default: // HalfOpen
		if b.trialsOut >= b.cfg.HalfOpenProbes {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		return nil
	}
}

// allow claims admission for a request dispatched now: it performs the
// open → half-open transition when the cooldown has elapsed and takes a
// half-open trial slot. Every successful allow must be paired with exactly
// one record, which releases the slot.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		b.setState(HalfOpen)
		b.trialsOut = 1
		return nil
	default: // HalfOpen
		if b.trialsOut >= b.cfg.HalfOpenProbes {
			b.rejects.Inc()
			return ErrBreakerOpen
		}
		b.trialsOut++
		return nil
	}
}

// record feeds one admitted request's outcome into the breaker. In
// half-open it always releases the trial slot, whatever the outcome; a
// neutral outcome otherwise changes nothing, so the next request simply
// re-probes.
func (b *breaker) record(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if b.trialsOut > 0 {
			b.trialsOut--
		}
		switch o {
		case failure:
			// The endpoint is still broken: restart the cooldown.
			b.setState(Open)
			b.openedAt = b.cfg.now()
			b.opens.Inc()
		case success:
			// Recovered: close with a clean window.
			b.setState(Closed)
			b.resetWindow()
		default: // neutral: slot released, state unchanged.
		}
	case Closed:
		if o == neutral {
			return
		}
		failed := o == failure
		if b.window[b.idx] && b.filled == len(b.window) {
			b.failures--
		}
		b.window[b.idx] = failed
		b.idx = (b.idx + 1) % len(b.window)
		if b.filled < len(b.window) {
			b.filled++
		}
		if failed {
			b.failures++
		}
		if b.filled >= b.cfg.MinSamples &&
			float64(b.failures)/float64(b.filled) >= b.cfg.FailureThreshold {
			b.setState(Open)
			b.openedAt = b.cfg.now()
			b.opens.Inc()
			b.resetWindow()
		}
	default: // Open: a late completion from before the trip; nothing to learn.
	}
}

func (b *breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.failures = 0, 0, 0
}

func (b *breaker) setState(s BreakerState) {
	b.state = s
	b.stateGge.Set(int64(s))
}

func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
