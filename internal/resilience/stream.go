package resilience

import (
	"errors"

	"context"
	"io"
	"time"

	"lusail/internal/client"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// DoStream runs one streaming query through the resilience layer: breaker
// check, the request itself, and outcome recording. Allow claims admission
// when the request dispatches; the outcome is recorded exactly once, at
// the stream's terminal event — clean EOF, first read error, or Close,
// whichever comes first — so a half-open trial slot claimed by Allow is
// always released even when the caller abandons the stream mid-way. A nil
// Manager streams directly.
func (m *Manager) DoStream(ctx context.Context, ep client.Endpoint, query string) (sparql.RowReader, error) {
	if m == nil {
		return client.QueryStream(ctx, ep, query)
	}
	if err := m.Allow(ep.Name()); err != nil {
		return nil, err
	}
	start := time.Now()
	rd, err := client.QueryStream(ctx, ep, query)
	if err != nil {
		d := time.Since(start)
		m.Record(ep.Name(), d, err)
		if m.probeObs != nil {
			m.probeObs(ep.Name(), d)
		}
		return nil, err
	}
	return &recordedReader{inner: rd, m: m, name: ep.Name(), start: start}, nil
}

// recordedReader feeds the stream's terminal outcome into the breaker and
// latency estimator exactly once.
type recordedReader struct {
	inner sparql.RowReader
	m     *Manager
	name  string
	start time.Time
	done  bool
}

func (r *recordedReader) Vars() []string { return r.inner.Vars() }

func (r *recordedReader) Boolean() (bool, bool) {
	if br, ok := r.inner.(sparql.BooleanReader); ok {
		return br.Boolean()
	}
	return false, false
}

func (r *recordedReader) Read() ([]rdf.Term, error) {
	row, err := r.inner.Read()
	switch {
	case err == nil:
		return row, nil
	case errors.Is(err, io.EOF):
		r.record(nil)
		return nil, io.EOF
	default:
		r.record(err)
		return nil, err
	}
}

// Close records success when the stream is abandoned before its terminal
// event: the endpoint was serving rows, which says nothing bad about its
// health, and the trial slot must be released regardless.
func (r *recordedReader) Close() error {
	r.record(nil)
	return r.inner.Close()
}

func (r *recordedReader) record(err error) {
	if r.done {
		return
	}
	r.done = true
	d := time.Since(r.start)
	r.m.Record(r.name, d, err)
	if r.m.probeObs != nil {
		r.m.probeObs(r.name, d)
	}
}
