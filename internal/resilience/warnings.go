package resilience

import (
	"context"
	"sync"

	"lusail/internal/client"
)

// Warning is one structured record of a degraded decision: an endpoint
// failure that partial-results mode absorbed instead of aborting the query.
// Warnings surface in Profile.Warnings so callers can tell a complete
// answer from a best-effort one.
type Warning struct {
	// Endpoint names the endpoint whose failure was absorbed.
	Endpoint string `json:"endpoint"`
	// Phase is the request phase that failed (subquery, count-probe, ...).
	Phase client.Phase `json:"phase"`
	// Message describes the absorbed failure.
	Message string `json:"message"`
}

// warnSink collects warnings across the goroutines of one query. It is
// carried in the context (like obs spans) so degrade decisions deep in the
// executor can record warnings without threading a sink through every
// signature.
type warnSink struct {
	mu sync.Mutex
	ws []Warning
}

type warnKey struct{}

// WithWarnings returns a context carrying a fresh warning sink for one
// query. TakeWarnings drains it when the query finishes.
func WithWarnings(ctx context.Context) context.Context {
	return context.WithValue(ctx, warnKey{}, &warnSink{})
}

// Warn records w into the context's warning sink; without a sink (a context
// not set up by WithWarnings) it is a no-op, so library code can warn
// unconditionally.
func Warn(ctx context.Context, w Warning) {
	if s, ok := ctx.Value(warnKey{}).(*warnSink); ok {
		s.mu.Lock()
		s.ws = append(s.ws, w)
		s.mu.Unlock()
	}
}

// TakeWarnings drains and returns the warnings recorded so far, nil when
// none (or when ctx has no sink).
func TakeWarnings(ctx context.Context) []Warning {
	s, ok := ctx.Value(warnKey{}).(*warnSink)
	if !ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.ws
	s.ws = nil
	return out
}
