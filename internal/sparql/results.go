package sparql

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lusail/internal/rdf"
)

// Results is a SPARQL result set: a sequence of solutions over a fixed
// variable list for SELECT queries, or a boolean for ASK queries.
//
// Rows are aligned with Vars; a zero rdf.Term means the variable is unbound
// in that solution.
type Results struct {
	Vars    []string
	Rows    [][]rdf.Term
	Boolean bool // ASK result; meaningful only when IsBoolean
	// IsBoolean marks an ASK result.
	IsBoolean bool
}

// NewResults returns an empty SELECT result set over the given variables.
func NewResults(vars []string) *Results {
	return &Results{Vars: vars}
}

// BoolResults returns an ASK result.
func BoolResults(v bool) *Results {
	return &Results{IsBoolean: true, Boolean: v}
}

// Len returns the number of solutions.
func (r *Results) Len() int { return len(r.Rows) }

// VarIndex returns the column index of the variable, or -1.
func (r *Results) VarIndex(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Binding returns row i as a variable→term map, skipping unbound variables.
func (r *Results) Binding(i int) map[string]rdf.Term {
	m := make(map[string]rdf.Term, len(r.Vars))
	for j, v := range r.Vars {
		if !r.Rows[i][j].IsZero() {
			m[v] = r.Rows[i][j]
		}
	}
	return m
}

// Column returns the distinct bound values of a variable.
func (r *Results) Column(v string) []rdf.Term {
	idx := r.VarIndex(v)
	if idx < 0 {
		return nil
	}
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for _, row := range r.Rows {
		t := row[idx]
		if !t.IsZero() && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Sort orders rows by the canonical term ordering over all columns. It makes
// result sets comparable in tests.
func (r *Results) Sort() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// jsonResults mirrors the SPARQL 1.1 Query Results JSON Format.
type jsonResults struct {
	Head    jsonHead      `json:"head"`
	Results *jsonBindings `json:"results,omitempty"`
	Boolean *bool         `json:"boolean,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonBindings struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

// MarshalJSON encodes the results in the SPARQL 1.1 JSON results format.
func (r *Results) MarshalJSON() ([]byte, error) {
	out := jsonResults{Head: jsonHead{Vars: r.Vars}}
	if r.IsBoolean {
		b := r.Boolean
		out.Boolean = &b
		return json.Marshal(out)
	}
	bindings := make([]map[string]jsonTerm, len(r.Rows))
	for i, row := range r.Rows {
		m := make(map[string]jsonTerm, len(r.Vars))
		for j, v := range r.Vars {
			t := row[j]
			if t.IsZero() {
				continue
			}
			m[v] = termToJSON(t)
		}
		bindings[i] = m
	}
	out.Results = &jsonBindings{Bindings: bindings}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the SPARQL 1.1 JSON results format.
func (r *Results) UnmarshalJSON(data []byte) error {
	var in jsonResults
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("sparql results: %w", err)
	}
	if in.Boolean != nil {
		*r = Results{IsBoolean: true, Boolean: *in.Boolean}
		return nil
	}
	r.Vars = in.Head.Vars
	r.IsBoolean = false
	r.Rows = nil
	if in.Results == nil {
		return nil
	}
	for _, m := range in.Results.Bindings {
		row := make([]rdf.Term, len(r.Vars))
		for j, v := range r.Vars {
			if jt, ok := m[v]; ok {
				t, err := termFromJSON(jt)
				if err != nil {
					return err
				}
				row[j] = t
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return nil
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

func termFromJSON(j jsonTerm) (rdf.Term, error) {
	switch j.Type {
	case "uri":
		return rdf.NewIRI(j.Value), nil
	case "bnode":
		return rdf.NewBlank(j.Value), nil
	case "literal", "typed-literal":
		return rdf.Term{Kind: rdf.Literal, Value: j.Value, Lang: j.Lang, Datatype: j.Datatype}, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql results: unknown term type %q", j.Type)
}

// WriteJSON writes the results to w in the SPARQL JSON format.
func (r *Results) WriteJSON(w io.Writer) error {
	data, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ParseResultsJSON reads a SPARQL JSON results document.
func ParseResultsJSON(data []byte) (*Results, error) {
	var r Results
	if err := r.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return &r, nil
}
