package sparql

import "fmt"

// ParseError is the typed error Parse returns for malformed queries. Pos is
// the byte offset into the query text nearest the failure (-1 when the
// failing position is unknown), so tools can point at the offending token.
//
// It replaces the anonymous fmt.Errorf chain the parser historically
// produced; errors.As(err, &pe) with pe *sparql.ParseError distinguishes
// syntax errors from execution errors.
type ParseError struct {
	// Pos is the byte offset of the failure in the query text, or -1.
	Pos int
	// Msg describes the syntax problem.
	Msg string
}

// Error implements error, keeping the historical "sparql:" prefix.
func (e *ParseError) Error() string {
	if e.Pos >= 0 {
		return fmt.Sprintf("sparql: offset %d: %s", e.Pos, e.Msg)
	}
	return "sparql: " + e.Msg
}
