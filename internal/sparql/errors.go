package sparql

import (
	"fmt"
	"strings"
)

// ParseError is the typed error Parse returns for malformed queries. Every
// parse failure carries the byte offset, the 1-based line and column, and
// the text of the offending token, so tools (lusail-check, lusaild's 400
// bodies, editor integrations) can point at the exact failure site.
//
// It replaces the anonymous fmt.Errorf chain the parser historically
// produced; errors.As(err, &pe) with pe *sparql.ParseError distinguishes
// syntax errors from execution errors.
type ParseError struct {
	// Pos is the byte offset of the failure in the query text, or -1 when
	// the failing position is unknown.
	Pos int
	// Line and Col are the 1-based line and column of Pos (0 when Pos is
	// unknown).
	Line, Col int
	// Token is the text of the offending token, when one was identified
	// ("" at end of input or when the failure is not tied to a token).
	Token string
	// Msg describes the syntax problem.
	Msg string
}

// Error implements error, keeping the historical "sparql:" prefix.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sparql: %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	if e.Pos >= 0 {
		return fmt.Sprintf("sparql: offset %d: %s", e.Pos, e.Msg)
	}
	return "sparql: " + e.Msg
}

// LineCol converts a byte offset into 1-based line and column numbers for
// the given source text. Columns count bytes, matching go/token's column
// convention for ASCII-dominated input. An offset outside src yields (0, 0).
func LineCol(src string, pos int) (line, col int) {
	if pos < 0 || pos > len(src) {
		return 0, 0
	}
	line = 1
	last := 0
	for i := 0; i < pos; i++ {
		if src[i] == '\n' {
			line++
			last = i + 1
		}
	}
	return line, pos - last + 1
}

// Severity tiers a semantic diagnostic. Error-tier diagnostics describe
// queries that are syntactically valid but semantically broken (per SPARQL
// semantics they silently yield empty or meaningless answers); lusaild
// rejects them with a structured 400 and Engine.Plan returns a *SemaError.
// Warnings flag likely mistakes that still have well-defined answers;
// infos are style/cost notes.
type Severity int

const (
	// SevInfo is a style or cost note (duplicate pattern, constant filter).
	SevInfo Severity = iota
	// SevWarning flags a likely mistake with a well-defined answer
	// (cartesian product, provably empty filter, OPTIONAL ordering).
	SevWarning
	// SevError flags a query that cannot mean what it says (a FILTER over a
	// variable the pattern group never binds always errors to false).
	SevError
)

// String returns the lowercase tier name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the tier name, so JSON consumers see "error" rather
// than an enum ordinal that could drift.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the tier name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch strings.Trim(string(data), `"`) {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("sparql: unknown severity %s", data)
	}
	return nil
}

// SemaDiagnostic is one finding of the static query analyzer
// (internal/sparql/sema): a named check, a severity tier, a position in the
// query text, and a message. Line/Col are filled when the analyzer has the
// query source; Pos alone when it only has the AST.
type SemaDiagnostic struct {
	// Check is the registry name of the analyzer that produced the finding.
	Check string `json:"check"`
	// Severity is the diagnostic tier.
	Severity Severity `json:"severity"`
	// Pos is the byte offset into the query text (-1 unknown).
	Pos int `json:"pos"`
	// Line and Col are 1-based when the source text was available.
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Message describes the finding.
	Message string `json:"message"`
}

// String renders "line:col: check: severity: message" (or "offset N" when
// no line is known), the lusail-check output line.
func (d SemaDiagnostic) String() string {
	switch {
	case d.Line > 0:
		return fmt.Sprintf("%d:%d: %s: %s: %s", d.Line, d.Col, d.Check, d.Severity, d.Message)
	case d.Pos >= 0:
		return fmt.Sprintf("offset %d: %s: %s: %s", d.Pos, d.Check, d.Severity, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Check, d.Severity, d.Message)
}

// SemaError is the typed error for queries rejected by static semantic
// analysis: syntactically valid, semantically broken. It carries every
// error-tier diagnostic (warnings and infos are reported through other
// channels — Profile.Warnings in the engine, the diagnostics list in
// lusail-check).
type SemaError struct {
	Diagnostics []SemaDiagnostic
}

// Error summarizes the first diagnostic and the total count.
func (e *SemaError) Error() string {
	if len(e.Diagnostics) == 0 {
		return "sparql: query rejected by semantic analysis"
	}
	var b strings.Builder
	b.WriteString("sparql: ")
	b.WriteString(e.Diagnostics[0].String())
	if n := len(e.Diagnostics) - 1; n > 0 {
		fmt.Fprintf(&b, " (and %d more)", n)
	}
	return b.String()
}
