package sparql

import (
	"encoding/xml"
	"fmt"
	"io"

	"lusail/internal/rdf"
)

// The SPARQL Query Results XML Format (https://www.w3.org/TR/rdf-sparql-XMLres/).

type xmlSparql struct {
	XMLName xml.Name    `xml:"http://www.w3.org/2005/sparql-results# sparql"`
	Head    xmlHead     `xml:"head"`
	Boolean *bool       `xml:"boolean,omitempty"`
	Results *xmlResults `xml:"results"`
}

type xmlHead struct {
	Variables []xmlVariable `xml:"variable"`
}

type xmlVariable struct {
	Name string `xml:"name,attr"`
}

type xmlResults struct {
	Results []xmlResult `xml:"result"`
}

type xmlResult struct {
	Bindings []xmlBinding `xml:"binding"`
}

type xmlBinding struct {
	Name    string      `xml:"name,attr"`
	URI     *string     `xml:"uri,omitempty"`
	BNode   *string     `xml:"bnode,omitempty"`
	Literal *xmlLiteral `xml:"literal,omitempty"`
}

type xmlLiteral struct {
	Lang     string `xml:"http://www.w3.org/XML/1998/namespace lang,attr,omitempty"`
	Datatype string `xml:"datatype,attr,omitempty"`
	Value    string `xml:",chardata"`
}

// WriteXML writes the results in the SPARQL Query Results XML Format.
func (r *Results) WriteXML(w io.Writer) error {
	doc := xmlSparql{}
	if r.IsBoolean {
		b := r.Boolean
		doc.Boolean = &b
	} else {
		for _, v := range r.Vars {
			doc.Head.Variables = append(doc.Head.Variables, xmlVariable{Name: v})
		}
		doc.Results = &xmlResults{}
		for _, row := range r.Rows {
			var res xmlResult
			for i, v := range r.Vars {
				t := row[i]
				if t.IsZero() {
					continue
				}
				b := xmlBinding{Name: v}
				switch t.Kind {
				case rdf.IRI:
					val := t.Value
					b.URI = &val
				case rdf.Blank:
					val := t.Value
					b.BNode = &val
				default:
					b.Literal = &xmlLiteral{Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
				}
				res.Bindings = append(res.Bindings, b)
			}
			doc.Results.Results = append(doc.Results.Results, res)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("sparql results xml: %w", err)
	}
	return enc.Flush()
}

// ParseResultsXML reads a SPARQL XML results document.
func ParseResultsXML(data []byte) (*Results, error) {
	var doc xmlSparql
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("sparql results xml: %w", err)
	}
	if doc.Boolean != nil {
		return BoolResults(*doc.Boolean), nil
	}
	out := NewResults(nil)
	for _, v := range doc.Head.Variables {
		out.Vars = append(out.Vars, v.Name)
	}
	if doc.Results == nil {
		return out, nil
	}
	for _, res := range doc.Results.Results {
		row := make([]rdf.Term, len(out.Vars))
		for _, b := range res.Bindings {
			idx := out.VarIndex(b.Name)
			if idx < 0 {
				continue
			}
			switch {
			case b.URI != nil:
				row[idx] = rdf.NewIRI(*b.URI)
			case b.BNode != nil:
				row[idx] = rdf.NewBlank(*b.BNode)
			case b.Literal != nil:
				row[idx] = rdf.Term{
					Kind:     rdf.Literal,
					Value:    b.Literal.Value,
					Lang:     b.Literal.Lang,
					Datatype: b.Literal.Datatype,
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
