// Package sparql implements the SPARQL subset Lusail needs end to end:
// a lexer, a recursive-descent parser, an abstract syntax tree, and a
// serializer that regenerates query text.
//
// The subset covers SELECT, ASK, and CONSTRUCT forms with basic graph
// patterns, FILTER (including EXISTS / NOT EXISTS with nested sub-SELECTs,
// as used by Lusail's locality check queries), OPTIONAL, UNION, VALUES,
// BIND, DISTINCT, GROUP BY with COUNT/SUM/MIN/MAX/AVG, ORDER BY, and
// LIMIT/OFFSET — everything the paper's query workloads and Lusail's
// generated queries (check queries, COUNT probes, VALUES-bound subqueries)
// require, plus the forms a standalone SPARQL library needs.
package sparql

import (
	"sort"

	"lusail/internal/rdf"
)

// Form distinguishes the query forms we support.
type Form int

const (
	// SelectForm is a SELECT query.
	SelectForm Form = iota
	// AskForm is an ASK query.
	AskForm
	// ConstructForm is a CONSTRUCT query: the WHERE solutions instantiate
	// the Template into an RDF graph.
	ConstructForm
)

// PatternTerm is one position of a triple pattern: either a variable or a
// concrete RDF term.
type PatternTerm struct {
	Var  string   // variable name without the '?' sigil; empty for constants
	Term rdf.Term // the constant term when Var is empty
}

// Var returns a variable pattern term.
func Var(name string) PatternTerm { return PatternTerm{Var: name} }

// Const returns a constant pattern term.
func Const(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// IRI returns a constant IRI pattern term.
func IRI(iri string) PatternTerm { return Const(rdf.NewIRI(iri)) }

// IsVar reports whether the pattern term is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

// TriplePattern is a triple whose positions may be variables.
type TriplePattern struct {
	S, P, O PatternTerm
	// Pos is the byte offset of the subject term in the source text (0 for
	// programmatically built patterns). It is ignored by String and by
	// equality-style helpers; StripPositions zeroes it.
	Pos int
}

// Vars returns the variable names used in the pattern, in S, P, O order,
// without duplicates.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// HasVar reports whether the pattern mentions the variable v.
func (tp TriplePattern) HasVar(v string) bool {
	return tp.S.Var == v || tp.P.Var == v || tp.O.Var == v
}

// Element is one syntactic element of a group graph pattern.
type Element interface{ element() }

func (TriplePattern) element() {}
func (Filter) element()        {}
func (Optional) element()      {}
func (Union) element()         {}
func (SubSelect) element()     {}
func (InlineData) element()    {}
func (Bind) element()          {}

// Filter is a FILTER constraint.
type Filter struct {
	Expr Expr
	// Pos is the byte offset of the FILTER keyword in the source text.
	Pos int
}

// Optional is an OPTIONAL { ... } block.
type Optional struct {
	Group *GroupPattern
	// Pos is the byte offset of the OPTIONAL keyword in the source text.
	Pos int
}

// Union is a chain of alternation branches: A UNION B UNION C.
type Union struct {
	Branches []*GroupPattern
	// Pos is the byte offset of the first branch in the source text.
	Pos int
}

// SubSelect is a nested SELECT query inside a group pattern.
type SubSelect struct {
	Query *Query
	// Pos is the byte offset of the nested SELECT in the source text.
	Pos int
}

// InlineData is a VALUES block. A zero rdf.Term in a row means UNDEF.
type InlineData struct {
	Vars []string
	Rows [][]rdf.Term
	// Pos is the byte offset of the VALUES keyword in the source text.
	Pos int
}

// Bind is a BIND(expr AS ?var) assignment.
type Bind struct {
	Var  string
	Expr Expr
	// Pos is the byte offset of the BIND keyword in the source text.
	Pos int
}

// GroupPattern is a group graph pattern: an ordered list of elements.
type GroupPattern struct {
	Elements []Element
	// Pos is the byte offset of the opening brace in the source text.
	Pos int
}

// TriplePatterns returns the basic graph pattern triples that are direct
// children of this group (not descending into OPTIONAL/UNION/sub-selects).
func (g *GroupPattern) TriplePatterns() []TriplePattern {
	var out []TriplePattern
	for _, e := range g.Elements {
		if tp, ok := e.(TriplePattern); ok {
			out = append(out, tp)
		}
	}
	return out
}

// AllTriplePatterns returns every triple pattern in the group, descending
// into OPTIONAL, UNION, and sub-select blocks.
func (g *GroupPattern) AllTriplePatterns() []TriplePattern {
	var out []TriplePattern
	g.walk(func(tp TriplePattern) { out = append(out, tp) })
	return out
}

func (g *GroupPattern) walk(fn func(TriplePattern)) {
	for _, e := range g.Elements {
		switch e := e.(type) {
		case TriplePattern:
			fn(e)
		case Optional:
			e.Group.walk(fn)
		case Union:
			for _, b := range e.Branches {
				b.walk(fn)
			}
		case SubSelect:
			e.Query.Where.walk(fn)
		}
	}
}

// Vars returns all variables mentioned by triple patterns, VALUES blocks and
// BINDs anywhere in the group, sorted.
func (g *GroupPattern) Vars() []string {
	seen := map[string]bool{}
	g.walk(func(tp TriplePattern) {
		for _, v := range tp.Vars() {
			seen[v] = true
		}
	})
	var collect func(gr *GroupPattern)
	collect = func(gr *GroupPattern) {
		for _, e := range gr.Elements {
			switch e := e.(type) {
			case InlineData:
				for _, v := range e.Vars {
					seen[v] = true
				}
			case Bind:
				seen[e.Var] = true
			case Optional:
				collect(e.Group)
			case Union:
				for _, b := range e.Branches {
					collect(b)
				}
			}
		}
	}
	collect(g)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Projection is one item of a SELECT projection: a plain variable or an
// aggregate bound to an output variable.
type Projection struct {
	Var string     // output variable name
	Agg *Aggregate // nil for a plain variable projection
	// Pos is the byte offset of the projection item in the source text.
	Pos int
}

// Aggregate is an aggregate function application (COUNT is what Lusail's
// cardinality probes need; SUM/MIN/MAX/AVG come along for completeness).
type Aggregate struct {
	Func     string // COUNT, SUM, MIN, MAX, AVG
	Distinct bool
	Var      string // argument variable; empty means '*' (COUNT only)
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Var  string
	Desc bool
	// Pos is the byte offset of the condition in the source text.
	Pos int
}

// Query is a parsed SPARQL query.
type Query struct {
	Form       Form
	Prefixes   map[string]string // kept for serialization fidelity
	Distinct   bool
	Star       bool // SELECT *
	Projection []Projection
	Where      *GroupPattern
	Template   []TriplePattern // CONSTRUCT template (ConstructForm only)
	GroupBy    []string        // GROUP BY variables (empty: implicit single group)
	OrderBy    []OrderCond
	Limit      int // -1 means absent
	Offset     int // 0 means absent
}

// NewSelect returns a SELECT query skeleton with no limit.
func NewSelect(vars ...string) *Query {
	q := &Query{Form: SelectForm, Where: &GroupPattern{}, Limit: -1}
	for _, v := range vars {
		q.Projection = append(q.Projection, Projection{Var: v})
	}
	return q
}

// NewAsk returns an ASK query skeleton.
func NewAsk() *Query {
	return &Query{Form: AskForm, Where: &GroupPattern{}, Limit: -1}
}

// ProjectedVars returns the output variable names of the query. For
// SELECT * it returns all variables of the WHERE clause.
func (q *Query) ProjectedVars() []string {
	if q.Star || len(q.Projection) == 0 {
		return q.Where.Vars()
	}
	out := make([]string, len(q.Projection))
	for i, p := range q.Projection {
		out[i] = p.Var
	}
	return out
}

// HasAggregates reports whether any projection is an aggregate.
func (q *Query) HasAggregates() bool {
	for _, p := range q.Projection {
		if p.Agg != nil {
			return true
		}
	}
	return false
}

// Expr is a SPARQL filter expression node.
type Expr interface{ exprNode() }

// ExprVar references a variable's bound value. Pos is the byte offset of
// the variable in the source text (0 when built programmatically).
type ExprVar struct {
	Name string
	Pos  int
}

// ExprTerm is a constant term.
type ExprTerm struct{ Term rdf.Term }

// ExprBinary applies a binary operator: || && = != < <= > >= + - * /.
type ExprBinary struct {
	Op   string
	L, R Expr
}

// ExprUnary applies a unary operator: ! or -.
type ExprUnary struct {
	Op string
	X  Expr
}

// ExprCall applies a builtin function such as BOUND, STR, REGEX, CONTAINS.
type ExprCall struct {
	Func string
	Args []Expr
}

// ExprExists is FILTER (NOT) EXISTS { ... }.
type ExprExists struct {
	Not   bool
	Group *GroupPattern
}

func (ExprVar) exprNode()    {}
func (ExprTerm) exprNode()   {}
func (ExprBinary) exprNode() {}
func (ExprUnary) exprNode()  {}
func (ExprCall) exprNode()   {}
func (ExprExists) exprNode() {}

// ExprVars returns the variables referenced by an expression, excluding
// those only mentioned inside EXISTS blocks (which scope their own group).
func ExprVars(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case ExprVar:
			seen[e.Name] = true
		case ExprBinary:
			walk(e.L)
			walk(e.R)
		case ExprUnary:
			walk(e.X)
		case ExprCall:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
