package sparql

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestLineCol(t *testing.T) {
	src := "ab\ncd\n\nxyz"
	cases := []struct {
		pos       int
		line, col int
	}{
		{0, 1, 1},
		{1, 1, 2},
		{2, 1, 3},  // the newline itself, still line 1
		{3, 2, 1},  // 'c'
		{4, 2, 2},  // 'd'
		{6, 3, 1},  // empty line
		{7, 4, 1},  // 'x'
		{9, 4, 3},  // 'z'
		{10, 4, 4}, // one past end: valid anchor for EOF errors
		{11, 0, 0}, // out of range
		{-1, 0, 0},
	}
	for _, c := range cases {
		line, col := LineCol(src, c.pos)
		if line != c.line || col != c.col {
			t.Errorf("LineCol(%d) = %d:%d, want %d:%d", c.pos, line, col, c.line, c.col)
		}
	}
}

// TestParseErrorPositions pins the satellite contract: every parse failure
// is a *ParseError carrying the byte offset, 1-based line/column, and the
// offending token's text.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		query     string
		line, col int
		token     string // "" means end-of-input anchor
		msgPart   string
	}{
		{
			name:    "lexer unexpected character",
			query:   "SELECT ?s WHERE { ?s ^ ?o }",
			line:    1, col: 22, token: "^",
			msgPart: "unexpected character",
		},
		{
			name:    "lexer unterminated string",
			query:   "SELECT ?s WHERE {\n  ?s <http://p> \"oops\n}",
			line:    2, col: 17, token: "\"oops",
			msgPart: "unterminated string",
		},
		{
			name:    "parser bad term",
			query:   "SELECT ?s WHERE { ?s <http://p> } LIMIT 5",
			line:    1, col: 33, token: "}",
			msgPart: "expected term or variable",
		},
		{
			name:    "undeclared prefix points at the pname",
			query:   "SELECT ?s WHERE {\n  ?s ub:advisor ?o\n}",
			line:    2, col: 6, token: "ub:advisor",
			msgPart: `undeclared prefix "ub"`,
		},
		{
			name:    "filter expression error",
			query:   "SELECT ?s WHERE { ?s <http://p> ?o . FILTER(?o > ) }",
			line:    1, col: 50, token: ")",
			msgPart: "unexpected token",
		},
		{
			// The lexer uppercases bare words when tokenizing keywords, so the
			// reported token text for non-keywords is the normalized spelling.
			name:    "bad LIMIT",
			query:   "SELECT ?s WHERE { ?s <http://p> ?o } LIMIT nope",
			line:    1, col: 44, token: "NOPE",
			msgPart: "invalid LIMIT",
		},
		{
			name:    "unterminated group anchors at end of input",
			query:   "SELECT ?s WHERE { ?s <http://p> ?o .",
			line:    1, col: 37, token: "",
			msgPart: "unexpected end of query",
		},
		{
			name:    "trailing token",
			query:   "ASK WHERE { ?s <http://p> ?o }\ngarbage",
			line:    2, col: 1, token: "GARBAGE",
			msgPart: "unexpected trailing token",
		},
		{
			name:    "VALUES arity mismatch points at the row",
			query:   "SELECT ?s WHERE { VALUES (?a ?b) { (<http://x>) } }",
			line:    1, col: 36, token: "(",
			msgPart: "VALUES row has 1 terms, want 2",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.query)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.query)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line != c.line || pe.Col != c.col {
				t.Errorf("position = %d:%d, want %d:%d (err: %v)", pe.Line, pe.Col, c.line, c.col, pe)
			}
			if pe.Token != c.token {
				t.Errorf("token = %q, want %q", pe.Token, c.token)
			}
			if !strings.Contains(pe.Msg, c.msgPart) {
				t.Errorf("message %q does not contain %q", pe.Msg, c.msgPart)
			}
			if pe.Pos < 0 || pe.Pos > len(c.query) {
				t.Errorf("byte offset %d out of range", pe.Pos)
			}
			if wl, wc := LineCol(c.query, pe.Pos); wl != pe.Line || wc != pe.Col {
				t.Errorf("Line/Col %d:%d inconsistent with Pos %d (computes to %d:%d)", pe.Line, pe.Col, pe.Pos, wl, wc)
			}
			if !strings.Contains(err.Error(), "sparql:") {
				t.Errorf("Error() lost the sparql prefix: %q", err.Error())
			}
		})
	}
}

// TestAllParseErrorsCarryPositions sweeps a corpus of malformed inputs and
// asserts no error path loses position context (the pre-fix failure mode).
func TestAllParseErrorsCarryPositions(t *testing.T) {
	bad := []string{
		"",
		"FOO",
		"SELECT",
		"SELECT WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE",
		"SELECT ?s WHERE { ?s ?p }",
		"SELECT ?s WHERE { ?s ?p ?o ",
		"SELECT ?s WHERE { ?s ?p ?o } ORDER BY",
		"SELECT ?s WHERE { ?s ?p ?o } GROUP BY",
		"SELECT ?s WHERE { ?s ?p ?o } OFFSET -1",
		"SELECT (COUNT ?s AS ?c) WHERE { ?s ?p ?o }",
		"SELECT (SUM(*) AS ?c) WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE { FILTER }",
		"SELECT ?s WHERE { BIND(1 AS 2) }",
		"SELECT ?s WHERE { VALUES }",
		"SELECT ?s WHERE { ?s \"lit\" ?o }",
		"SELECT ?s WHERE { ?s 4 ?o }",
		"SELECT ?s WHERE { a ?p ?o }",
		"PREFIX SELECT ?s WHERE { ?s ?p ?o }",
		"PREFIX x: SELECT ?s WHERE { ?s ?p ?o }",
		"CONSTRUCT { } WHERE { ?s ?p ?o }",
		"CONSTRUCT { ?s ?p ?o  WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s <http://p> \"x\"@ }",
		"SELECT ?s WHERE { ?s <http://p> ?o . FILTER(?o = \"\\q\") }",
		"SELECT ?s WHERE { ?s <http://p> ?",
	}
	for _, query := range bad {
		_, err := Parse(query)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", query)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error is %T, want *ParseError: %v", query, err, err)
			continue
		}
		if pe.Pos < 0 || pe.Line < 1 || pe.Col < 1 {
			t.Errorf("Parse(%q): lost position context: pos=%d line=%d col=%d msg=%q",
				query, pe.Pos, pe.Line, pe.Col, pe.Msg)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarning, SevError} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatalf("marshal %v: %v", sev, err)
		}
		if want := `"` + sev.String() + `"`; string(data) != want {
			t.Errorf("marshal %v = %s, want %s", sev, data, want)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %v", sev, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestSemaDiagnosticString(t *testing.T) {
	d := SemaDiagnostic{Check: "unboundvar", Severity: SevError, Pos: 41, Line: 3, Col: 9,
		Message: "?x is never bound"}
	if got, want := d.String(), "3:9: unboundvar: error: ?x is never bound"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d.Line, d.Col = 0, 0
	if got := d.String(); !strings.Contains(got, "offset 41") {
		t.Errorf("offset form = %q", got)
	}
	e := &SemaError{Diagnostics: []SemaDiagnostic{d, d}}
	if got := e.Error(); !strings.Contains(got, "and 1 more") {
		t.Errorf("SemaError.Error() = %q", got)
	}
}

func TestStripPositions(t *testing.T) {
	q := MustParse(`SELECT ?s (COUNT(?o) AS ?c) WHERE {
		?s <http://p> ?o .
		OPTIONAL { ?s <http://q> ?z . FILTER(?z > 3) }
		{ ?s <http://r> ?w } UNION { ?s <http://t> ?w }
		BIND(?o AS ?b)
		VALUES ?v { <http://x> }
		FILTER NOT EXISTS { ?s <http://u> ?n }
	} GROUP BY ?s ORDER BY DESC(?s) LIMIT 5`)
	if q.Where.Pos == 0 {
		t.Fatal("parser did not set group position")
	}
	StripPositions(q)
	var walk func(g *GroupPattern)
	check := func(name string, pos int) {
		if pos != 0 {
			t.Errorf("%s position not stripped: %d", name, pos)
		}
	}
	var walkExpr func(x Expr)
	walkExpr = func(x Expr) {
		switch e := x.(type) {
		case ExprVar:
			check("ExprVar", e.Pos)
		case ExprBinary:
			walkExpr(e.L)
			walkExpr(e.R)
		case ExprUnary:
			walkExpr(e.X)
		case ExprCall:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case ExprExists:
			walk(e.Group)
		}
	}
	walk = func(g *GroupPattern) {
		check("GroupPattern", g.Pos)
		for _, el := range g.Elements {
			switch e := el.(type) {
			case TriplePattern:
				check("TriplePattern", e.Pos)
			case Filter:
				check("Filter", e.Pos)
				walkExpr(e.Expr)
			case Optional:
				check("Optional", e.Pos)
				walk(e.Group)
			case Union:
				check("Union", e.Pos)
				for _, b := range e.Branches {
					walk(b)
				}
			case SubSelect:
				check("SubSelect", e.Pos)
			case InlineData:
				check("InlineData", e.Pos)
			case Bind:
				check("Bind", e.Pos)
				walkExpr(e.Expr)
			}
		}
	}
	walk(q.Where)
	for _, pr := range q.Projection {
		check("Projection", pr.Pos)
	}
	for _, oc := range q.OrderBy {
		check("OrderCond", oc.Pos)
	}
}
