package sparql

import (
	"encoding/json"
	"io"

	"lusail/internal/rdf"
)

// JSONStream writes a SPARQL 1.1 JSON results document incrementally: the
// head is emitted on creation and each solution is appended as its own
// bindings object, so a serving layer can flush rows to the wire as the
// engine produces them instead of materializing the whole result set.
//
// The stream is not safe for concurrent use; callers serialize WriteRow.
// After any write error the stream is poisoned and further calls return the
// first error.
type JSONStream struct {
	w    io.Writer
	vars []string
	rows int
	err  error
}

// NewJSONStream writes the document head for the given variables and
// returns the stream. Close terminates the document.
func NewJSONStream(w io.Writer, vars []string) (*JSONStream, error) {
	s := &JSONStream{w: w, vars: vars}
	head, err := json.Marshal(jsonHead{Vars: vars})
	if err != nil {
		return nil, err
	}
	s.write(`{"head":`)
	s.writeBytes(head)
	s.write(`,"results":{"bindings":[`)
	return s, s.err
}

// WriteRow appends one solution. Unbound and unknown variables are omitted,
// matching Results.MarshalJSON.
func (s *JSONStream) WriteRow(binding map[string]rdf.Term) error {
	if s.err != nil {
		return s.err
	}
	m := make(map[string]jsonTerm, len(binding))
	for _, v := range s.vars {
		if t, ok := binding[v]; ok && !t.IsZero() {
			m[v] = termToJSON(t)
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		s.err = err
		return err
	}
	if s.rows > 0 {
		s.write(",")
	}
	s.writeBytes(data)
	s.rows++
	return s.err
}

// Rows returns the number of solutions written so far.
func (s *JSONStream) Rows() int { return s.rows }

// Close terminates the document. The stream is unusable afterwards.
func (s *JSONStream) Close() error {
	if s.err != nil {
		return s.err
	}
	s.write("]}}")
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONStream) Err() error { return s.err }

func (s *JSONStream) write(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func (s *JSONStream) writeBytes(b []byte) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(b)
}
