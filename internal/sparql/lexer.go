package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokIRI               // <http://...>
	tokPName             // prefix:local or prefix: (prefixed name)
	tokVar               // ?x or $x
	tokString            // "..." (value has escapes resolved)
	tokLangTag           // @en
	tokDTSep             // ^^
	tokNumber            // 42, 3.14, -1e3
	tokKeyword           // SELECT, WHERE, FILTER, ... (upper-cased)
	tokA                 // the keyword 'a' (rdf:type)
	tokPunct             // { } ( ) . , ; *
	tokOp                // = != < <= > >= && || ! + - /
)

type token struct {
	kind tokenKind
	text string // for tokString: unescaped value; otherwise raw text
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "WHERE": true, "PREFIX": true, "BASE": true,
	"DISTINCT": true, "REDUCED": true, "FILTER": true, "OPTIONAL": true,
	"UNION": true, "LIMIT": true, "OFFSET": true, "ORDER": true, "BY": true, "GROUP": true,
	"ASC": true, "DESC": true, "VALUES": true, "UNDEF": true, "NOT": true,
	"EXISTS": true, "AS": true, "BIND": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"IN": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(input string) ([]token, error) {
	l := &lexer{in: input}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.in[l.pos]
	switch {
	case c == '<':
		// '<' starts an IRI only if a whitespace-free run reaches '>';
		// otherwise it is the less-than operator (e.g. FILTER(?x < 5)).
		if end := strings.IndexByte(l.in[l.pos:], '>'); end >= 0 && !strings.ContainsAny(l.in[l.pos:l.pos+end], " \t\n\r") {
			t := token{kind: tokIRI, text: l.in[l.pos+1 : l.pos+end], pos: start}
			l.pos += end + 1
			return t, nil
		}
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '?' || c == '$':
		l.pos++
		name := l.takeWhile(isVarChar)
		if name == "" {
			return token{}, l.lexErr(start, string(c), "empty variable name")
		}
		return token{kind: tokVar, text: name, pos: start}, nil
	case c == '"' || c == '\'':
		return l.lexString(c)
	case c == '@':
		l.pos++
		tag := l.takeWhile(func(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' })
		if tag == "" {
			return token{}, l.lexErr(start, "@", "empty language tag")
		}
		return token{kind: tokLangTag, text: tag, pos: start}, nil
	case strings.HasPrefix(l.in[l.pos:], "^^"):
		l.pos += 2
		return token{kind: tokDTSep, text: "^^", pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '{' || c == '}' || c == '(' || c == ')' || c == '.' || c == ',' || c == ';' || c == '*':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{kind: tokOp, text: "!", pos: start}, nil
	case c == '<' || c == '>': // '<' handled above; '>' here
		l.pos++
		if l.pos < len(l.in) && l.in[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: string(c) + "=", pos: start}, nil
		}
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '&' && strings.HasPrefix(l.in[l.pos:], "&&"):
		l.pos += 2
		return token{kind: tokOp, text: "&&", pos: start}, nil
	case c == '|' && strings.HasPrefix(l.in[l.pos:], "||"):
		l.pos += 2
		return token{kind: tokOp, text: "||", pos: start}, nil
	case c == '+' || c == '/':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '-':
		// Could start a negative number.
		if l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
			l.pos++
			t, err := l.lexNumber()
			if err != nil {
				return token{}, err
			}
			t.text = "-" + t.text
			t.pos = start
			return t, nil
		}
		l.pos++
		return token{kind: tokOp, text: "-", pos: start}, nil
	default:
		return l.lexWord()
	}
}

func (l *lexer) lexWord() (token, error) {
	start := l.pos
	word := l.takeWhile(func(r rune) bool {
		return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
	})
	if word == "" {
		return token{}, l.lexErr(start, string(l.in[l.pos]), fmt.Sprintf("unexpected character %q", l.in[l.pos]))
	}
	// A word followed by ':' is a prefixed-name prefix.
	if l.pos < len(l.in) && l.in[l.pos] == ':' {
		l.pos++
		local := l.takeWhile(func(r rune) bool {
			return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
		})
		return token{kind: tokPName, text: word + ":" + local, pos: start}, nil
	}
	// Trailing '.' belongs to triple termination, not the word (e.g. "ex.").
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
		l.pos--
	}
	if word == "a" {
		return token{kind: tokA, text: "a", pos: start}, nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		return token{kind: tokKeyword, text: up, pos: start}, nil
	}
	// Bare words that are not keywords are only valid as function names in
	// expressions (REGEX, STR, ...). Treat them as keyword-like tokens.
	return token{kind: tokKeyword, text: up, pos: start}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.in) {
			snip := l.in[start:min(start+12, len(l.in))]
			if i := strings.IndexByte(snip, '\n'); i >= 0 {
				snip = snip[:i]
			}
			return token{}, l.lexErr(start, snip, "unterminated string")
		}
		c := l.in[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return token{}, l.lexErr(l.pos, "\\", "dangling escape")
			}
			l.pos++
			switch l.in[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"', '\'', '\\':
				b.WriteByte(l.in[l.pos])
			default:
				return token{}, l.lexErr(l.pos, "\\"+string(l.in[l.pos]), fmt.Sprintf("unsupported escape \\%c", l.in[l.pos]))
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	l.takeWhile(func(r rune) bool { return r >= '0' && r <= '9' })
	if l.pos < len(l.in) && l.in[l.pos] == '.' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
		l.pos++
		l.takeWhile(func(r rune) bool { return r >= '0' && r <= '9' })
	}
	if l.pos < len(l.in) && (l.in[l.pos] == 'e' || l.in[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.in) && (l.in[l.pos] == '+' || l.in[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.in) || l.in[l.pos] < '0' || l.in[l.pos] > '9' {
			l.pos = save // not an exponent after all
		} else {
			l.takeWhile(func(r rune) bool { return r >= '0' && r <= '9' })
		}
	}
	return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil
}

func (l *lexer) takeWhile(pred func(rune) bool) string {
	start := l.pos
	for l.pos < len(l.in) {
		r, size := utf8.DecodeRuneInString(l.in[l.pos:])
		if !pred(r) {
			break
		}
		l.pos += size
	}
	return l.in[start:l.pos]
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			nl := strings.IndexByte(l.in[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.in)
				return
			}
			l.pos += nl + 1
			continue
		}
		return
	}
}

func isVarChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// lexErr builds a position-carrying ParseError for a failure at pos, with
// the offending token text. Line/column are derived from the full input so
// every lexer error is precisely locatable.
func (l *lexer) lexErr(pos int, tok, msg string) error {
	line, col := LineCol(l.in, pos)
	return &ParseError{Pos: pos, Line: line, Col: col, Token: tok, Msg: msg}
}
