package sparql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"lusail/internal/rdf"
)

// Parse parses a SPARQL query in the supported subset. Syntax errors are
// returned as *ParseError with the byte offset of the offending token.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			return nil, pe
		}
		return nil, &ParseError{Pos: -1, Msg: err.Error()}
	}
	p := &parser{toks: toks, src: input, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			return nil, pe
		}
		// Defensive: every parser error site should already build a
		// *ParseError via errf; anchor stragglers at the current token.
		return nil, p.errf(p.peek(), "%s", err.Error())
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests and for query
// constants whose validity is guaranteed by construction.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	pos      int
	src      string
	prefixes map[string]string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		t := p.peek()
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		t := p.peek()
		return p.errf(t, "expected %s, got %s", kw, t)
	}
	return nil
}

// errf builds a *ParseError anchored at tok: byte offset, 1-based
// line/column, and the offending token's text (empty at end of input).
func (p *parser) errf(tok token, format string, args ...any) error {
	line, col := LineCol(p.src, tok.pos)
	text := tok.text
	if tok.kind == tokEOF {
		text = ""
	}
	return &ParseError{Pos: tok.pos, Line: line, Col: col, Token: text, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) query() (*Query, error) {
	for p.atKeyword("PREFIX") {
		p.advance()
		name := p.advance()
		if name.kind != tokPName || !strings.HasSuffix(name.text, ":") && !strings.Contains(name.text, ":") {
			return nil, p.errf(name, "expected prefix name, got %s", name)
		}
		pfx := strings.SplitN(name.text, ":", 2)[0]
		iri := p.advance()
		if iri.kind != tokIRI {
			return nil, p.errf(iri, "expected IRI after PREFIX %s:, got %s", pfx, iri)
		}
		p.prefixes[pfx] = iri.text
	}
	q, err := p.selectOrAsk()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected trailing token %s", t)
	}
	return q, nil
}

func (p *parser) selectOrAsk() (*Query, error) {
	q := &Query{Limit: -1, Prefixes: p.prefixes}
	switch {
	case p.eatKeyword("SELECT"):
		q.Form = SelectForm
		if p.eatKeyword("DISTINCT") {
			q.Distinct = true
		} else {
			p.eatKeyword("REDUCED")
		}
		if err := p.projection(q); err != nil {
			return nil, err
		}
	case p.eatKeyword("ASK"):
		q.Form = AskForm
	case p.eatKeyword("CONSTRUCT"):
		q.Form = ConstructForm
		open := p.peek()
		tmpl := &GroupPattern{Pos: open.pos}
		save := p.prefixes
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		for !p.eatPunct("}") {
			if p.peek().kind == tokEOF {
				return nil, p.errf(p.peek(), "unterminated CONSTRUCT template")
			}
			if err := p.triplesBlock(tmpl); err != nil {
				return nil, err
			}
		}
		p.prefixes = save
		q.Template = tmpl.TriplePatterns()
		if len(q.Template) == 0 {
			return nil, p.errf(open, "empty CONSTRUCT template")
		}
	default:
		return nil, p.errf(p.peek(), "expected SELECT, ASK, or CONSTRUCT, got %s", p.peek())
	}
	p.eatKeyword("WHERE")
	g, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = g
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) projection(q *Query) error {
	if p.eatPunct("*") {
		q.Star = true
		return nil
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokVar:
			p.advance()
			q.Projection = append(q.Projection, Projection{Var: t.text, Pos: t.pos})
		case p.atPunct("("):
			p.advance()
			proj, err := p.aggregateProjection()
			if err != nil {
				return err
			}
			proj.Pos = t.pos
			q.Projection = append(q.Projection, proj)
		default:
			if len(q.Projection) == 0 {
				return p.errf(t, "expected projection variable, got %s", t)
			}
			return nil
		}
	}
}

// aggregateProjection parses "(COUNT(DISTINCT ?x) AS ?c)" after '('.
func (p *parser) aggregateProjection() (Projection, error) {
	fn := p.advance()
	if fn.kind != tokKeyword || !isAggregateFunc(fn.text) {
		return Projection{}, p.errf(fn, "expected aggregate function, got %s", fn)
	}
	agg := &Aggregate{Func: fn.text}
	if err := p.expectPunct("("); err != nil {
		return Projection{}, err
	}
	if p.eatKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.eatPunct("*") {
		if agg.Func != "COUNT" {
			return Projection{}, p.errf(fn, "%s(*) is not valid", agg.Func)
		}
	} else {
		v := p.advance()
		if v.kind != tokVar {
			return Projection{}, p.errf(v, "expected variable in %s(), got %s", agg.Func, v)
		}
		agg.Var = v.text
	}
	if err := p.expectPunct(")"); err != nil {
		return Projection{}, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return Projection{}, err
	}
	out := p.advance()
	if out.kind != tokVar {
		return Projection{}, p.errf(out, "expected output variable after AS, got %s", out)
	}
	if err := p.expectPunct(")"); err != nil {
		return Projection{}, err
	}
	return Projection{Var: out.text, Agg: agg}, nil
}

func isAggregateFunc(s string) bool {
	switch s {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func (p *parser) solutionModifiers(q *Query) error {
	for {
		switch {
		case p.eatKeyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for p.peek().kind == tokVar {
				q.GroupBy = append(q.GroupBy, p.advance().text)
			}
			if len(q.GroupBy) == 0 {
				return p.errf(p.peek(), "expected GROUP BY variable, got %s", p.peek())
			}
		case p.eatKeyword("ORDER"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for {
				switch {
				case p.atKeyword("ASC"):
					pos := p.advance().pos
					v, err := p.parenVar()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderCond{Var: v, Pos: pos})
				case p.atKeyword("DESC"):
					pos := p.advance().pos
					v, err := p.parenVar()
					if err != nil {
						return err
					}
					q.OrderBy = append(q.OrderBy, OrderCond{Var: v, Desc: true, Pos: pos})
				case p.peek().kind == tokVar:
					vt := p.advance()
					q.OrderBy = append(q.OrderBy, OrderCond{Var: vt.text, Pos: vt.pos})
				default:
					if len(q.OrderBy) == 0 {
						return p.errf(p.peek(), "expected ORDER BY condition, got %s", p.peek())
					}
					goto next
				}
			}
		case p.eatKeyword("LIMIT"):
			t := p.advance()
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return p.errf(t, "invalid LIMIT %s", t)
			}
			q.Limit = n
		case p.eatKeyword("OFFSET"):
			t := p.advance()
			n, err := strconv.Atoi(t.text)
			if err != nil || n < 0 {
				return p.errf(t, "invalid OFFSET %s", t)
			}
			q.Offset = n
		default:
			return nil
		}
	next:
	}
}

func (p *parser) parenVar() (string, error) {
	if err := p.expectPunct("("); err != nil {
		return "", err
	}
	v := p.advance()
	if v.kind != tokVar {
		return "", p.errf(v, "expected variable, got %s", v)
	}
	if err := p.expectPunct(")"); err != nil {
		return "", err
	}
	return v.text, nil
}

func (p *parser) groupPattern() (*GroupPattern, error) {
	open := p.peek()
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupPattern{Pos: open.pos}
	// GroupGraphPattern ::= '{' ( SubSelect | GroupGraphPatternSub ) '}'
	if p.atKeyword("SELECT") {
		selPos := p.peek().pos
		sub, err := p.selectOrAsk()
		if err != nil {
			return nil, err
		}
		p.eatPunct(".")
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		g.Elements = append(g.Elements, SubSelect{Query: sub, Pos: selPos})
		return g, nil
	}
	for {
		if p.eatPunct("}") {
			return g, nil
		}
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return nil, p.errf(t, "unexpected end of query inside group pattern")
		case p.atKeyword("FILTER"):
			kw := p.advance()
			e, err := p.filterExpr()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Filter{Expr: e, Pos: kw.pos})
			p.eatPunct(".")
		case p.atKeyword("OPTIONAL"):
			kw := p.advance()
			inner, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Optional{Group: inner, Pos: kw.pos})
			p.eatPunct(".")
		case p.atKeyword("BIND"):
			kw := p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			v := p.advance()
			if v.kind != tokVar {
				return nil, p.errf(v, "expected variable after AS, got %s", v)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Bind{Var: v.text, Expr: e, Pos: kw.pos})
			p.eatPunct(".")
		case p.atKeyword("VALUES"):
			kw := p.advance()
			vals, err := p.valuesBlock()
			if err != nil {
				return nil, err
			}
			vals.Pos = kw.pos
			g.Elements = append(g.Elements, vals)
			p.eatPunct(".")
		case p.atPunct("{"):
			// Either a nested group (possibly a UNION chain) or a sub-select.
			el, err := p.groupOrSubSelect()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, el)
			p.eatPunct(".")
		default:
			if err := p.triplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// groupOrSubSelect handles '{' ... '}' [UNION '{' ... '}']* and sub-selects.
func (p *parser) groupOrSubSelect() (Element, error) {
	// Look ahead: '{' SELECT ... is a sub-select.
	if p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "SELECT" {
		p.advance() // '{'
		selPos := p.peek().pos
		sub, err := p.selectOrAsk()
		if err != nil {
			return nil, err
		}
		p.eatPunct(".")
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return SubSelect{Query: sub, Pos: selPos}, nil
	}
	openPos := p.peek().pos
	first, err := p.groupPattern()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("UNION") {
		// A plain nested group: flatten it as a single-branch union so the
		// evaluator treats it uniformly (join with the enclosing group).
		return Union{Branches: []*GroupPattern{first}, Pos: openPos}, nil
	}
	u := Union{Branches: []*GroupPattern{first}, Pos: openPos}
	for p.eatKeyword("UNION") {
		b, err := p.groupPattern()
		if err != nil {
			return nil, err
		}
		u.Branches = append(u.Branches, b)
	}
	return u, nil
}

// triplesBlock parses one or more triples with ';' and ',' shorthands until
// something that is not a triple continuation.
func (p *parser) triplesBlock(g *GroupPattern) error {
	subjPos := p.peek().pos
	subj, err := p.patternTerm(false)
	if err != nil {
		return err
	}
	for {
		pred, err := p.patternTerm(true)
		if err != nil {
			return err
		}
		for {
			obj, err := p.patternTerm(false)
			if err != nil {
				return err
			}
			g.Elements = append(g.Elements, TriplePattern{S: subj, P: pred, O: obj, Pos: subjPos})
			if p.eatPunct(",") {
				continue
			}
			break
		}
		if p.eatPunct(";") {
			if p.atPunct(".") || p.atPunct("}") { // dangling ';'
				break
			}
			continue
		}
		break
	}
	p.eatPunct(".")
	return nil
}

// patternTerm parses a variable or RDF term in a triple pattern position.
func (p *parser) patternTerm(isPredicate bool) (PatternTerm, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return Var(t.text), nil
	case tokIRI:
		p.advance()
		return Const(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.advance()
		iri, err := p.expandPName(t)
		if err != nil {
			return PatternTerm{}, err
		}
		return Const(rdf.NewIRI(iri)), nil
	case tokA:
		if !isPredicate {
			return PatternTerm{}, p.errf(t, "'a' keyword only valid in predicate position")
		}
		p.advance()
		return Const(rdf.NewIRI(rdf.RDFType)), nil
	case tokString:
		if isPredicate {
			return PatternTerm{}, p.errf(t, "literal not allowed as predicate")
		}
		p.advance()
		return Const(p.literalTail(t.text)), nil
	case tokNumber:
		if isPredicate {
			return PatternTerm{}, p.errf(t, "number not allowed as predicate")
		}
		p.advance()
		return Const(numberTerm(t.text)), nil
	case tokKeyword:
		if t.text == "TRUE" || t.text == "FALSE" {
			p.advance()
			return Const(rdf.NewBoolean(t.text == "TRUE")), nil
		}
	}
	return PatternTerm{}, p.errf(t, "expected term or variable, got %s", t)
}

// literalTail consumes an optional language tag or datatype after a string.
func (p *parser) literalTail(lex string) rdf.Term {
	t := p.peek()
	switch t.kind {
	case tokLangTag:
		p.advance()
		return rdf.NewLangLiteral(lex, t.text)
	case tokDTSep:
		p.advance()
		dt := p.advance()
		switch dt.kind {
		case tokIRI:
			return rdf.NewTypedLiteral(lex, dt.text)
		case tokPName:
			if iri, err := p.expandPName(dt); err == nil {
				return rdf.NewTypedLiteral(lex, iri)
			}
		}
		return rdf.NewTypedLiteral(lex, dt.text)
	}
	return rdf.NewLiteral(lex)
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, ".eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

func (p *parser) expandPName(t token) (string, error) {
	parts := strings.SplitN(t.text, ":", 2)
	base, ok := p.prefixes[parts[0]]
	if !ok {
		return "", p.errf(t, "undeclared prefix %q", parts[0])
	}
	return base + parts[1], nil
}

func (p *parser) valuesBlock() (InlineData, error) {
	var d InlineData
	switch {
	case p.peek().kind == tokVar:
		d.Vars = []string{p.advance().text}
		if err := p.expectPunct("{"); err != nil {
			return d, err
		}
		for !p.eatPunct("}") {
			t, err := p.valuesTerm()
			if err != nil {
				return d, err
			}
			d.Rows = append(d.Rows, []rdf.Term{t})
		}
	case p.atPunct("("):
		p.advance()
		for p.peek().kind == tokVar {
			d.Vars = append(d.Vars, p.advance().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return d, err
		}
		if err := p.expectPunct("{"); err != nil {
			return d, err
		}
		for !p.eatPunct("}") {
			rowTok := p.peek()
			if err := p.expectPunct("("); err != nil {
				return d, err
			}
			var row []rdf.Term
			for !p.eatPunct(")") {
				t, err := p.valuesTerm()
				if err != nil {
					return d, err
				}
				row = append(row, t)
			}
			if len(row) != len(d.Vars) {
				return d, p.errf(rowTok, "VALUES row has %d terms, want %d", len(row), len(d.Vars))
			}
			d.Rows = append(d.Rows, row)
		}
	default:
		return d, p.errf(p.peek(), "expected variable or '(' after VALUES, got %s", p.peek())
	}
	return d, nil
}

// valuesTerm parses one term in a VALUES data block; UNDEF yields the zero Term.
func (p *parser) valuesTerm() (rdf.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokKeyword:
		if t.text == "UNDEF" {
			p.advance()
			return rdf.Term{}, nil
		}
		if t.text == "TRUE" || t.text == "FALSE" {
			p.advance()
			return rdf.NewBoolean(t.text == "TRUE"), nil
		}
	case tokIRI:
		p.advance()
		return rdf.NewIRI(t.text), nil
	case tokPName:
		p.advance()
		iri, err := p.expandPName(t)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case tokString:
		p.advance()
		return p.literalTail(t.text), nil
	case tokNumber:
		p.advance()
		return numberTerm(t.text), nil
	}
	return rdf.Term{}, p.errf(t, "invalid VALUES term %s", t)
}

// filterExpr parses the constraint after FILTER: either a bracketed
// expression, an EXISTS/NOT EXISTS block, or a builtin call.
func (p *parser) filterExpr() (Expr, error) {
	switch {
	case p.atKeyword("NOT"):
		p.advance()
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		g, err := p.groupPattern()
		if err != nil {
			return nil, err
		}
		return ExprExists{Not: true, Group: g}, nil
	case p.atKeyword("EXISTS"):
		p.advance()
		g, err := p.groupPattern()
		if err != nil {
			return nil, err
		}
		return ExprExists{Group: g}, nil
	case p.atPunct("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.peek().kind == tokKeyword:
		return p.primaryExpr()
	}
	return nil, p.errf(p.peek(), "expected FILTER constraint, got %s", p.peek())
}

// Expression grammar with precedence: || < && < comparison < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = ExprBinary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = ExprBinary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return ExprBinary{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = ExprBinary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if (t.kind == tokOp && t.text == "/") || (t.kind == tokPunct && t.text == "*") {
			p.advance()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = ExprBinary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return ExprUnary{Op: t.text, X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return ExprVar{Name: t.text, Pos: t.pos}, nil
	case tokIRI:
		p.advance()
		return ExprTerm{Term: rdf.NewIRI(t.text)}, nil
	case tokPName:
		p.advance()
		iri, err := p.expandPName(t)
		if err != nil {
			return nil, err
		}
		return ExprTerm{Term: rdf.NewIRI(iri)}, nil
	case tokString:
		p.advance()
		return ExprTerm{Term: p.literalTail(t.text)}, nil
	case tokNumber:
		p.advance()
		return ExprTerm{Term: numberTerm(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		switch t.text {
		case "TRUE", "FALSE":
			p.advance()
			return ExprTerm{Term: rdf.NewBoolean(t.text == "TRUE")}, nil
		case "NOT":
			p.advance()
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			g, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Not: true, Group: g}, nil
		case "EXISTS":
			p.advance()
			g, err := p.groupPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Group: g}, nil
		default:
			// Builtin function call: NAME '(' args ')'.
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, p.errf(t, "unknown expression %s", t)
			}
			call := ExprCall{Func: t.text}
			for !p.eatPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
	}
	return nil, p.errf(t, "unexpected token %s in expression", t)
}
