package sparql_test

import (
	"reflect"
	"testing"

	"lusail/internal/bench"
	"lusail/internal/sparql"
)

// FuzzParseRoundTrip checks the Parse → String → Parse identity: any query
// the parser accepts must serialize to text the parser accepts again, and
// the reparsed AST (positions stripped) must be structurally identical to
// the first. A divergence here means the serializer loses information or
// the parser is whitespace-sensitive — either breaks canonical plan-cache
// keys, which hash serialized canonical text.
func FuzzParseRoundTrip(f *testing.F) {
	for _, corpus := range [][]bench.Query{
		bench.LUBMQueries(),
		bench.Bio2RDFQueries(),
		bench.QFedQueries(),
		bench.LRBSimpleQueries(),
		bench.LRBComplexQueries(),
		bench.LRBLargeQueries(),
	} {
		for _, q := range corpus {
			f.Add(q.Text)
		}
	}
	f.Add("SELECT * WHERE { ?s ?p ?o . OPTIONAL { ?s <http://n> ?n } FILTER(?o > 3) }")
	f.Add("SELECT DISTINCT ?a WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> \"x\"@en } } ORDER BY ?a LIMIT 5")

	f.Fuzz(func(t *testing.T, text string) {
		q1, err := sparql.Parse(text)
		if err != nil {
			return // rejected inputs are out of scope; crash-freedom is the check
		}
		out := q1.String()
		q2, err := sparql.Parse(out)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\ninput: %q\nserialized: %q", err, text, out)
		}
		sparql.StripPositions(q1)
		sparql.StripPositions(q2)
		// String expands prefixed names to full IRIs, so the reparsed
		// query legitimately has no PREFIX table; everything else must match.
		q1.Prefixes, q2.Prefixes = nil, nil
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("round-trip changed the AST\ninput: %q\nserialized: %q", text, out)
		}
		if again := q2.String(); again != out {
			t.Fatalf("serialization is not a fixpoint\nfirst:  %q\nsecond: %q", out, again)
		}
	})
}
