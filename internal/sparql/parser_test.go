package sparql

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`SELECT ?s ?o WHERE { ?s <http://p> ?o . }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Form != SelectForm {
		t.Error("expected SELECT form")
	}
	if got := q.ProjectedVars(); !reflect.DeepEqual(got, []string{"s", "o"}) {
		t.Errorf("ProjectedVars = %v", got)
	}
	tps := q.Where.TriplePatterns()
	if len(tps) != 1 {
		t.Fatalf("got %d triple patterns", len(tps))
	}
	want := TriplePattern{S: Var("s"), P: IRI("http://p"), O: Var("o")}
	tps[0].Pos = 0
	if tps[0] != want {
		t.Errorf("pattern = %+v, want %+v", tps[0], want)
	}
}

func TestParsePrefixes(t *testing.T) {
	q := MustParse(`
		PREFIX ub: <http://lubm.org/u#>
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		SELECT ?s WHERE { ?s rdf:type ub:GraduateStudent . ?s ub:advisor ?p }`)
	tps := q.Where.TriplePatterns()
	if len(tps) != 2 {
		t.Fatalf("got %d patterns", len(tps))
	}
	if tps[0].P.Term.Value != rdf.RDFType {
		t.Errorf("rdf:type expanded to %q", tps[0].P.Term.Value)
	}
	if tps[0].O.Term.Value != "http://lubm.org/u#GraduateStudent" {
		t.Errorf("ub:GraduateStudent expanded to %q", tps[0].O.Term.Value)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s a <http://T> }`)
	tp := q.Where.TriplePatterns()[0]
	if tp.P.Term.Value != rdf.RDFType {
		t.Errorf("'a' should expand to rdf:type, got %q", tp.P.Term.Value)
	}
}

func TestParseSemicolonCommaShorthand(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?a , ?b ; <http://q> ?c . }`)
	tps := q.Where.TriplePatterns()
	if len(tps) != 3 {
		t.Fatalf("got %d patterns, want 3", len(tps))
	}
	if tps[0].O.Var != "a" || tps[1].O.Var != "b" || tps[2].O.Var != "c" {
		t.Errorf("patterns = %v", tps)
	}
	if tps[2].P.Term.Value != "http://q" {
		t.Errorf("third predicate = %v", tps[2].P)
	}
}

func TestParseLiterals(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE {
		?s <http://p1> "plain" .
		?s <http://p2> "tagged"@en .
		?s <http://p3> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?s <http://p4> 42 .
		?s <http://p5> 3.5 .
		?s <http://p6> true .
	}`)
	tps := q.Where.TriplePatterns()
	wants := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("tagged", "en"),
		rdf.NewTypedLiteral("5", rdf.XSDInteger),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("3.5", rdf.XSDDouble),
		rdf.NewBoolean(true),
	}
	for i, w := range wants {
		if tps[i].O.Term != w {
			t.Errorf("pattern %d object = %v, want %v", i, tps[i].O.Term, w)
		}
	}
}

func TestParseFilterComparison(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://p> ?v . FILTER(?v > 5 && ?v <= 10) }`)
	var f Filter
	for _, e := range q.Where.Elements {
		if ff, ok := e.(Filter); ok {
			f = ff
		}
	}
	bin, ok := f.Expr.(ExprBinary)
	if !ok || bin.Op != "&&" {
		t.Fatalf("filter = %#v", f.Expr)
	}
	l := bin.L.(ExprBinary)
	if l.Op != ">" {
		t.Errorf("left op = %q", l.Op)
	}
	r := bin.R.(ExprBinary)
	if r.Op != "<=" {
		t.Errorf("right op = %q", r.Op)
	}
}

func TestParseFilterNotExistsWithSubselect(t *testing.T) {
	// The exact shape of Lusail's GJV check query (paper Figure 5).
	q := MustParse(`
		SELECT ?P WHERE {
			?S <http://pi> ?P .
			FILTER NOT EXISTS { SELECT ?P WHERE { ?P <http://pj> ?C . } } .
		} LIMIT 1`)
	if q.Limit != 1 {
		t.Errorf("Limit = %d", q.Limit)
	}
	var ex ExprExists
	found := false
	for _, e := range q.Where.Elements {
		if f, ok := e.(Filter); ok {
			ex, found = f.Expr.(ExprExists)
		}
	}
	if !found || !ex.Not {
		t.Fatalf("expected NOT EXISTS filter, got %#v", q.Where.Elements)
	}
	if len(ex.Group.Elements) != 1 {
		t.Fatalf("exists group has %d elements", len(ex.Group.Elements))
	}
	sub, ok := ex.Group.Elements[0].(SubSelect)
	if !ok {
		t.Fatalf("expected sub-select, got %#v", ex.Group.Elements[0])
	}
	if got := sub.Query.ProjectedVars(); !reflect.DeepEqual(got, []string{"P"}) {
		t.Errorf("subselect projects %v", got)
	}
}

func TestParseOptionalUnion(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?s <http://p> ?o .
		OPTIONAL { ?s <http://q> ?x }
		{ ?s <http://r> ?y } UNION { ?s <http://t> ?y }
	}`)
	var haveOpt, haveUnion bool
	for _, e := range q.Where.Elements {
		switch e := e.(type) {
		case Optional:
			haveOpt = true
			if len(e.Group.TriplePatterns()) != 1 {
				t.Error("optional group wrong")
			}
		case Union:
			haveUnion = true
			if len(e.Branches) != 2 {
				t.Errorf("union branches = %d", len(e.Branches))
			}
		}
	}
	if !haveOpt || !haveUnion {
		t.Errorf("optional=%v union=%v", haveOpt, haveUnion)
	}
}

func TestParseValues(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?s <http://p> ?o .
		VALUES (?s ?o) { (<http://a> "x") (<http://b> UNDEF) }
	}`)
	var d InlineData
	for _, e := range q.Where.Elements {
		if v, ok := e.(InlineData); ok {
			d = v
		}
	}
	if !reflect.DeepEqual(d.Vars, []string{"s", "o"}) {
		t.Fatalf("values vars = %v", d.Vars)
	}
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if !d.Rows[1][1].IsZero() {
		t.Error("UNDEF should parse to zero term")
	}
}

func TestParseValuesSingleVarForm(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?o . VALUES ?s { <http://a> <http://b> } }`)
	var d InlineData
	for _, e := range q.Where.Elements {
		if v, ok := e.(InlineData); ok {
			d = v
		}
	}
	if len(d.Rows) != 2 || len(d.Vars) != 1 {
		t.Errorf("single-var VALUES parsed as %+v", d)
	}
}

func TestParseCountAggregate(t *testing.T) {
	q := MustParse(`SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s <http://p> ?o }`)
	if len(q.Projection) != 1 || q.Projection[0].Agg == nil {
		t.Fatalf("projection = %+v", q.Projection)
	}
	agg := q.Projection[0].Agg
	if agg.Func != "COUNT" || !agg.Distinct || agg.Var != "s" || q.Projection[0].Var != "c" {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestParseAsk(t *testing.T) {
	q := MustParse(`ASK { ?s <http://p> <http://o> }`)
	if q.Form != AskForm {
		t.Error("expected ASK form")
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://p> ?o } ORDER BY DESC(?s) ?o LIMIT 10 OFFSET 5`)
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "s" || q.OrderBy[1].Var != "o" {
		t.Errorf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseBind(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://p> ?o . BIND(STR(?o) AS ?str) }`)
	var b Bind
	ok := false
	for _, e := range q.Where.Elements {
		if bb, isB := e.(Bind); isB {
			b, ok = bb, true
		}
	}
	if !ok || b.Var != "str" {
		t.Fatalf("bind = %+v ok=%v", b, ok)
	}
	if c, isCall := b.Expr.(ExprCall); !isCall || c.Func != "STR" {
		t.Errorf("bind expr = %#v", b.Expr)
	}
}

func TestParseRegexFilter(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://p> ?o . FILTER REGEX(?o, "^abc", "i") }`)
	found := false
	for _, e := range q.Where.Elements {
		if f, ok := e.(Filter); ok {
			if c, ok := f.Expr.(ExprCall); ok && c.Func == "REGEX" && len(c.Args) == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Error("REGEX filter not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?s`,
		`SELECT ?s WHERE { ?s <http://p> }`,
		`SELECT ?s WHERE { ?s "lit" ?o }`,        // literal predicate
		`SELECT ?s WHERE { ?s ub:x ?o }`,         // undeclared prefix
		`SELECT ?s WHERE { ?s <http://p> ?o `,    // unterminated group
		`SELECT ?s WHERE { ?s <http://p> ?o } }`, // trailing token
		`SELECT (COUNT(?s) ?c) WHERE { ?s <http://p> ?o }`, // missing AS
		`SELECT ?s WHERE { ?s <http://p> ?o } LIMIT -1`,
		`SELECT ?s WHERE { VALUES (?a ?b) { (<http://x>) } }`, // arity mismatch
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseVarDollarSigil(t *testing.T) {
	q := MustParse(`SELECT $s WHERE { $s <http://p> ?o }`)
	if got := q.ProjectedVars(); !reflect.DeepEqual(got, []string{"s"}) {
		t.Errorf("vars = %v", got)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse("SELECT ?s WHERE {\n # a comment\n ?s <http://p> ?o\n}")
	if len(q.Where.TriplePatterns()) != 1 {
		t.Error("comment handling broke pattern parse")
	}
}

// Round-trip: parse → serialize → parse must preserve structure.
func TestSerializeRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT ?s ?o WHERE { ?s <http://p> ?o . }`,
		`SELECT DISTINCT * WHERE { ?s <http://p> ?o . FILTER(?o > 5) . }`,
		`ASK WHERE { <http://a> <http://p> ?x . }`,
		`SELECT (COUNT(?s) AS ?c) WHERE { ?s <http://p> ?o . }`,
		`SELECT ?s WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?z . } . } LIMIT 3`,
		`SELECT ?s WHERE { { ?s <http://p> ?o . } UNION { ?s <http://q> ?o . } . }`,
		`SELECT ?P WHERE { ?S <http://pi> ?P . FILTER NOT EXISTS { SELECT ?P WHERE { ?P <http://pj> ?C . } . } . } LIMIT 1`,
		`SELECT ?s WHERE { ?s <http://p> ?o . VALUES (?s) { (<http://a>) (UNDEF) } . }`,
		`SELECT ?s WHERE { ?s <http://p> ?o . } ORDER BY DESC(?s) LIMIT 10 OFFSET 2`,
		`SELECT ?s WHERE { ?s <http://p> "lit"@en . FILTER REGEX(STR(?s), "x") . }`,
	}
	for _, in := range queries {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := q1.String()
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", out, in, err)
		}
		// Compare ignoring the Prefixes map (serialization expands them) and
		// source positions (serialization changes the spelling).
		q1.Prefixes, q2.Prefixes = nil, nil
		StripPositions(q1)
		StripPositions(q2)
		if !reflect.DeepEqual(q1, q2) {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s\n q1: %#v\n q2: %#v", in, out, q1, q2)
		}
	}
}

func TestGroupPatternVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?a <http://p> ?b .
		OPTIONAL { ?b <http://q> ?c }
		{ ?a <http://r> ?d } UNION { ?a <http://s> ?d }
		VALUES ?e { <http://x> }
	}`)
	got := q.Where.Vars()
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Vars() = %v, want %v", got, want)
	}
}

func TestLexerOperatorVsIRI(t *testing.T) {
	// '<' must lex as operator when not an IRI.
	q := MustParse(`SELECT ?v WHERE { ?s <http://p> ?v . FILTER(?v < 10 || ?v >= 20) }`)
	if len(q.Where.Elements) != 2 {
		t.Fatalf("elements = %d", len(q.Where.Elements))
	}
	if !strings.Contains(q.String(), "<") {
		t.Error("serialized query lost comparison")
	}
}

func TestWriteCSV(t *testing.T) {
	res := NewResults([]string{"a", "b"})
	res.Rows = [][]rdf.Term{
		{rdf.NewIRI("http://x"), rdf.NewLiteral("v,with comma")},
		{rdf.NewBlank("b0"), rdf.Term{}},
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "a,b\nhttp://x,\"v,with comma\"\n_:b0,\n"
	if out != want {
		t.Errorf("csv = %q, want %q", out, want)
	}

	var bb strings.Builder
	if err := BoolResults(true).WriteCSV(&bb); err != nil {
		t.Fatal(err)
	}
	if bb.String() != "boolean\ntrue\n" {
		t.Errorf("bool csv = %q", bb.String())
	}
}

func TestWriteTSV(t *testing.T) {
	res := NewResults([]string{"a"})
	res.Rows = [][]rdf.Term{{rdf.NewLangLiteral("hi", "en")}}
	var buf strings.Builder
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "?a\n\"hi\"@en\n" {
		t.Errorf("tsv = %q", buf.String())
	}
}

// Property: a randomly generated query AST serializes to text that parses
// back to the same AST (modulo the Prefixes map).
func TestRandomQueryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		q := randomQuery(rng, 0)
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: generated query does not parse: %v\n%s", trial, err, text)
		}
		q.Prefixes, back.Prefixes = nil, nil
		normalizeQuery(q)
		normalizeQuery(back)
		if !reflect.DeepEqual(q, back) {
			t.Fatalf("trial %d: round trip mismatch\ntext: %s\n q: %#v\n back: %#v", trial, text, q, back)
		}
	}
}

// normalizeQuery clears fields the serializer canonicalizes, including
// source positions, which depend on the concrete spelling.
func normalizeQuery(q *Query) {
	if len(q.Projection) == 0 {
		q.Star = true
	}
	StripPositions(q)
}

func randomQuery(rng *rand.Rand, depth int) *Query {
	q := NewSelect()
	if rng.Intn(4) == 0 && depth == 0 {
		q.Form = AskForm
	} else {
		switch rng.Intn(3) {
		case 0:
			q.Star = true
		case 1:
			q.Projection = []Projection{{Var: "v0"}}
		default:
			q.Projection = []Projection{{Var: "c", Agg: &Aggregate{Func: "COUNT", Distinct: rng.Intn(2) == 0, Var: "v0"}}}
		}
		if rng.Intn(3) == 0 {
			q.Distinct = true
		}
	}
	nPat := 1 + rng.Intn(3)
	for i := 0; i < nPat; i++ {
		q.Where.Elements = append(q.Where.Elements, randomPattern(rng))
	}
	if rng.Intn(3) == 0 {
		q.Where.Elements = append(q.Where.Elements, Filter{Expr: randomExpr(rng, 0)})
	}
	if rng.Intn(4) == 0 && depth == 0 {
		inner := &GroupPattern{Elements: []Element{randomPattern(rng)}}
		q.Where.Elements = append(q.Where.Elements, Optional{Group: inner})
	}
	if rng.Intn(4) == 0 && depth == 0 {
		q.Where.Elements = append(q.Where.Elements, Union{Branches: []*GroupPattern{
			{Elements: []Element{randomPattern(rng)}},
			{Elements: []Element{randomPattern(rng)}},
		}})
	}
	if rng.Intn(4) == 0 {
		q.Where.Elements = append(q.Where.Elements, InlineData{
			Vars: []string{"v0"},
			Rows: [][]rdf.Term{{rdf.NewIRI("http://x/1")}, {rdf.Term{}}},
		})
	}
	if q.Form == SelectForm {
		if len(q.Projection) == 1 && q.Projection[0].Agg != nil && rng.Intn(2) == 0 {
			q.Projection = append([]Projection{{Var: "v0"}}, q.Projection...)
			q.GroupBy = []string{"v0"}
		}
		if rng.Intn(3) == 0 && len(q.GroupBy) == 0 && q.Projection == nil {
			q.OrderBy = []OrderCond{{Var: "v0", Desc: rng.Intn(2) == 0}}
		}
		if rng.Intn(3) == 0 {
			q.Limit = rng.Intn(100)
		}
		if rng.Intn(4) == 0 {
			q.Offset = 1 + rng.Intn(10)
		}
	}
	return q
}

func randomPattern(rng *rand.Rand) TriplePattern {
	pos := func(canLiteral bool) PatternTerm {
		switch rng.Intn(4) {
		case 0:
			return Var(fmt.Sprintf("v%d", rng.Intn(3)))
		case 1:
			return IRI(fmt.Sprintf("http://x/%d", rng.Intn(5)))
		case 2:
			if canLiteral {
				return Const(rdf.NewLiteral(fmt.Sprintf("lit%d", rng.Intn(5))))
			}
			return Var("s")
		default:
			if canLiteral {
				return Const(rdf.NewTypedLiteral("5", rdf.XSDInteger))
			}
			return IRI("http://x/c")
		}
	}
	return TriplePattern{S: pos(false), P: pos(false), O: pos(true)}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth > 2 {
		return ExprVar{Name: "v0"}
	}
	switch rng.Intn(6) {
	case 0:
		return ExprVar{Name: fmt.Sprintf("v%d", rng.Intn(3))}
	case 1:
		return ExprTerm{Term: rdf.NewInteger(int64(rng.Intn(50)))}
	case 2:
		ops := []string{"=", "!=", "<", ">", "<=", ">=", "&&", "||", "+", "-", "*", "/"}
		return ExprBinary{Op: ops[rng.Intn(len(ops))], L: randomExpr(rng, depth+1), R: randomExpr(rng, depth+1)}
	case 3:
		return ExprUnary{Op: "!", X: randomExpr(rng, depth+1)}
	case 4:
		return ExprCall{Func: "CONTAINS", Args: []Expr{
			ExprCall{Func: "STR", Args: []Expr{ExprVar{Name: "v0"}}},
			ExprTerm{Term: rdf.NewLiteral("x")},
		}}
	default:
		return ExprExists{Not: rng.Intn(2) == 0, Group: &GroupPattern{Elements: []Element{randomPattern(rng)}}}
	}
}

func TestXMLResultsRoundTrip(t *testing.T) {
	res := NewResults([]string{"x", "y"})
	res.Rows = [][]rdf.Term{
		{rdf.NewIRI("http://a"), rdf.NewLangLiteral("hallo", "de")},
		{rdf.NewBlank("b0"), rdf.NewTypedLiteral("7", rdf.XSDInteger)},
		{rdf.NewLiteral("plain"), rdf.Term{}}, // unbound y
	}
	var buf strings.Builder
	if err := res.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sparql-results#") {
		t.Errorf("missing namespace: %s", buf.String())
	}
	back, err := ParseResultsXML([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	back.Sort()
	if !reflect.DeepEqual(res.Vars, back.Vars) || !reflect.DeepEqual(res.Rows, back.Rows) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back.Rows, res.Rows)
	}
}

func TestXMLBooleanRoundTrip(t *testing.T) {
	var buf strings.Builder
	if err := BoolResults(true).WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseResultsXML([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsBoolean || !back.Boolean {
		t.Errorf("boolean round trip = %+v", back)
	}
}
