package sparql

import (
	"errors"
	"io"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

func decoderFor(t *testing.T, doc string) *JSONDecoder {
	t.Helper()
	d, err := NewJSONDecoder(io.NopCloser(strings.NewReader(doc)))
	if err != nil {
		t.Fatalf("NewJSONDecoder: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestJSONDecoderTermKinds(t *testing.T) {
	doc := `{"head":{"vars":["s","o"]},"results":{"bindings":[
		{"s":{"type":"uri","value":"http://ex.org/a"},
		 "o":{"type":"literal","value":"plain"}},
		{"s":{"type":"bnode","value":"b0"},
		 "o":{"type":"literal","value":"bonjour","xml:lang":"fr"}},
		{"o":{"type":"typed-literal","value":"42",
		      "datatype":"http://www.w3.org/2001/XMLSchema#integer"}}
	]}}`
	d := decoderFor(t, doc)
	if got := d.Vars(); len(got) != 2 || got[0] != "s" || got[1] != "o" {
		t.Fatalf("Vars() = %v", got)
	}

	row, err := d.Read()
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != rdf.NewIRI("http://ex.org/a") || row[1] != rdf.NewLiteral("plain") {
		t.Errorf("row 1 = %v", row)
	}

	row, err = d.Read()
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Kind != rdf.Blank {
		t.Errorf("row 2 subject kind = %v", row[0].Kind)
	}
	if row[1].Lang != "fr" {
		t.Errorf("row 2 object lang = %q", row[1].Lang)
	}

	row, err = d.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !row[0].IsZero() {
		t.Errorf("row 3 subject should be unbound, got %v", row[0])
	}
	if row[1].Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("row 3 datatype = %q", row[1].Datatype)
	}

	if _, err := d.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last row: %v, want io.EOF", err)
	}
	if d.Rows() != 3 {
		t.Errorf("Rows() = %d", d.Rows())
	}
}

func TestJSONDecoderBoolean(t *testing.T) {
	d := decoderFor(t, `{"head":{},"boolean":true}`)
	if _, err := d.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("boolean document Read: %v, want io.EOF", err)
	}
	val, ok := d.Boolean()
	if !ok || !val {
		t.Fatalf("Boolean() = %v, %v", val, ok)
	}
}

func TestJSONDecoderEmptyAndTrailing(t *testing.T) {
	// Unknown head members, members after bindings, and an empty bindings
	// array are all legal per the W3C result format.
	d := decoderFor(t, `{"head":{"vars":["x"],"link":["http://ex.org/meta"]},
		"results":{"bindings":[],"ordered":true}}`)
	if _, err := d.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty bindings Read: %v, want io.EOF", err)
	}

	// A results member with extra keys before bindings.
	d2 := decoderFor(t, `{"head":{"vars":["x"]},
		"results":{"distinct":false,"bindings":[{"x":{"type":"literal","value":"1"}}]}}`)
	row, err := d2.Read()
	if err != nil || row[0] != rdf.NewLiteral("1") {
		t.Fatalf("Read = %v, %v", row, err)
	}
	if _, err := d2.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after row: %v, want io.EOF", err)
	}
}

func TestJSONDecoderMalformed(t *testing.T) {
	// Truncated mid-bindings: the error must be an error, never a clean EOF
	// — a cut-off connection must not read as a complete result.
	d := decoderFor(t, `{"head":{"vars":["x"]},"results":{"bindings":[
		{"x":{"type":"literal","value":"1"}},`)
	if _, err := d.Read(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	_, err := d.Read()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated document: %v, want a decode error", err)
	}
	// The error is sticky.
	if _, err2 := d.Read(); err2 == nil || errors.Is(err2, io.EOF) {
		t.Fatalf("sticky error: %v", err2)
	}
}

// TestJSONDecoderIncremental proves rows come off the wire before the
// document ends: the first row is decoded while the writer still holds the
// rest of the body.
func TestJSONDecoderIncremental(t *testing.T) {
	pr, pw := io.Pipe()
	release := make(chan struct{})
	go func() {
		io.WriteString(pw, `{"head":{"vars":["x"]},"results":{"bindings":[
			{"x":{"type":"literal","value":"first"}},`)
		<-release
		io.WriteString(pw, `{"x":{"type":"literal","value":"second"}}]}}`)
		pw.Close()
	}()
	d, err := NewJSONDecoder(pr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	row, err := d.Read()
	if err != nil {
		t.Fatalf("first row before body completed: %v", err)
	}
	if row[0] != rdf.NewLiteral("first") {
		t.Fatalf("row = %v", row)
	}
	close(release)
	if row, err = d.Read(); err != nil || row[0] != rdf.NewLiteral("second") {
		t.Fatalf("second row: %v, %v", row, err)
	}
	if _, err := d.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("end: %v, want io.EOF", err)
	}
}

func TestResultsReaderRoundTrip(t *testing.T) {
	res := NewResults([]string{"a", "b"})
	res.Rows = append(res.Rows,
		[]rdf.Term{rdf.NewIRI("http://ex.org/1"), rdf.NewLiteral("x")},
		[]rdf.Term{rdf.NewIRI("http://ex.org/2"), {}},
	)
	got, err := ReadAllRows(NewResultsReader(res))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[1][0] != res.Rows[1][0] || !got.Rows[1][1].IsZero() {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Vars[0] != "a" || got.Vars[1] != "b" {
		t.Fatalf("vars = %v", got.Vars)
	}
}
