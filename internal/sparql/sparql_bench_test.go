package sparql

import (
	"testing"

	"lusail/internal/rdf"
)

const benchQuery = `
	PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
	PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	SELECT ?S ?P ?U ?A WHERE {
		?S ub:advisor ?P .
		?S rdf:type ub:GraduateStudent .
		?P ub:teacherOf ?C .
		?S ub:takesCourse ?C .
		?P ub:PhDDegreeFrom ?U .
		?U ub:address ?A .
		FILTER(STR(?A) != "nowhere" && ?S != ?P)
		OPTIONAL { ?U ub:name ?N }
	} ORDER BY ?S LIMIT 100`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	q := MustParse(benchQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.String()
	}
}

func BenchmarkResultsJSONRoundTrip(b *testing.B) {
	res := NewResults([]string{"a", "b"})
	for i := 0; i < 200; i++ {
		res.Rows = append(res.Rows, []rdf.Term{
			rdf.NewIRI("http://example.org/entity/very/long/path"),
			rdf.NewLangLiteral("some literal value", "en"),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := res.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseResultsJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
