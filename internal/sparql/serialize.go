package sparql

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the query as SPARQL text. The output always uses absolute
// IRIs (prefixes are expanded at parse time), so it parses identically
// anywhere regardless of prefix declarations.
func (q *Query) String() string {
	var b strings.Builder
	q.write(&b)
	return b.String()
}

func (q *Query) write(b *strings.Builder) {
	switch q.Form {
	case AskForm:
		b.WriteString("ASK ")
	case ConstructForm:
		b.WriteString("CONSTRUCT { ")
		for _, tp := range q.Template {
			b.WriteString(tp.String())
			b.WriteString(" . ")
		}
		b.WriteString("} ")
	default:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		switch {
		case q.Star || len(q.Projection) == 0:
			b.WriteString("* ")
		default:
			for _, p := range q.Projection {
				if p.Agg != nil {
					b.WriteString("(")
					b.WriteString(p.Agg.Func)
					b.WriteString("(")
					if p.Agg.Distinct {
						b.WriteString("DISTINCT ")
					}
					if p.Agg.Var == "" {
						b.WriteString("*")
					} else {
						b.WriteString("?" + p.Agg.Var)
					}
					b.WriteString(") AS ?")
					b.WriteString(p.Var)
					b.WriteString(") ")
				} else {
					b.WriteString("?" + p.Var + " ")
				}
			}
		}
	}
	b.WriteString("WHERE ")
	q.Where.write(b)
	for i, v := range q.GroupBy {
		if i == 0 {
			b.WriteString(" GROUP BY")
		}
		b.WriteString(" ?" + v)
	}
	for i, oc := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY")
		}
		if oc.Desc {
			b.WriteString(" DESC(?" + oc.Var + ")")
		} else {
			b.WriteString(" ?" + oc.Var)
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(q.Offset))
	}
}

// String renders the group pattern including its braces.
func (g *GroupPattern) String() string {
	var b strings.Builder
	g.write(&b)
	return b.String()
}

func (g *GroupPattern) write(b *strings.Builder) {
	b.WriteString("{ ")
	for _, e := range g.Elements {
		switch e := e.(type) {
		case TriplePattern:
			b.WriteString(e.String())
			b.WriteString(" . ")
		case Filter:
			b.WriteString("FILTER ")
			writeFilterConstraint(b, e.Expr)
			b.WriteString(" . ")
		case Optional:
			b.WriteString("OPTIONAL ")
			e.Group.write(b)
			b.WriteString(" . ")
		case Union:
			for i, br := range e.Branches {
				if i > 0 {
					b.WriteString(" UNION ")
				}
				br.write(b)
			}
			b.WriteString(" . ")
		case SubSelect:
			b.WriteString("{ ")
			e.Query.write(b)
			b.WriteString(" } . ")
		case InlineData:
			writeValues(b, e)
			b.WriteString(" . ")
		case Bind:
			b.WriteString("BIND(")
			writeExpr(b, e.Expr)
			b.WriteString(" AS ?" + e.Var + ") . ")
		}
	}
	b.WriteString("}")
}

func writeValues(b *strings.Builder, d InlineData) {
	b.WriteString("VALUES (")
	for i, v := range d.Vars {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("?" + v)
	}
	b.WriteString(") { ")
	for _, row := range d.Rows {
		b.WriteString("(")
		for i, t := range row {
			if i > 0 {
				b.WriteByte(' ')
			}
			if t.IsZero() {
				b.WriteString("UNDEF")
			} else {
				b.WriteString(t.String())
			}
		}
		b.WriteString(") ")
	}
	b.WriteString("}")
}

// String renders the pattern term in SPARQL syntax.
func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

// String renders the triple pattern without a trailing dot.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", tp.S, tp.P, tp.O)
}

// writeFilterConstraint writes an expression in FILTER position: EXISTS
// blocks appear bare, everything else is parenthesized.
func writeFilterConstraint(b *strings.Builder, e Expr) {
	if ex, ok := e.(ExprExists); ok {
		writeExists(b, ex)
		return
	}
	b.WriteString("(")
	writeExpr(b, e)
	b.WriteString(")")
}

func writeExists(b *strings.Builder, ex ExprExists) {
	if ex.Not {
		b.WriteString("NOT ")
	}
	b.WriteString("EXISTS ")
	ex.Group.write(b)
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case ExprVar:
		b.WriteString("?" + e.Name)
	case ExprTerm:
		b.WriteString(e.Term.String())
	case ExprBinary:
		b.WriteString("(")
		writeExpr(b, e.L)
		b.WriteString(" " + e.Op + " ")
		writeExpr(b, e.R)
		b.WriteString(")")
	case ExprUnary:
		b.WriteString(e.Op)
		b.WriteString("(")
		writeExpr(b, e.X)
		b.WriteString(")")
	case ExprCall:
		b.WriteString(e.Func)
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteString(")")
	case ExprExists:
		writeExists(b, e)
	}
}

// ExprString renders an expression as SPARQL text.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}
