package sparql

// StripPositions zeroes every source-position (Pos) field in the query,
// in place, including positions nested inside groups and expressions.
// Structural comparisons of parsed ASTs (round-trip identity tests,
// canonicalization) use it so position metadata — which depends on
// whitespace and prefix spelling — never affects equality.
func StripPositions(q *Query) {
	if q == nil {
		return
	}
	for i := range q.Projection {
		q.Projection[i].Pos = 0
	}
	for i := range q.OrderBy {
		q.OrderBy[i].Pos = 0
	}
	for i := range q.Template {
		q.Template[i].Pos = 0
	}
	stripGroupPositions(q.Where)
}

func stripGroupPositions(g *GroupPattern) {
	if g == nil {
		return
	}
	g.Pos = 0
	for i, el := range g.Elements {
		g.Elements[i] = stripElementPositions(el)
	}
}

// stripElementPositions returns the element with every Pos zeroed. Elements
// are interface values over struct types, so positions in the element
// itself (and in value-typed expressions inside it) require rebuilding.
func stripElementPositions(el Element) Element {
	switch e := el.(type) {
	case TriplePattern:
		e.Pos = 0
		return e
	case Filter:
		e.Pos = 0
		e.Expr = stripExprPositions(e.Expr)
		return e
	case Optional:
		e.Pos = 0
		stripGroupPositions(e.Group)
		return e
	case Union:
		e.Pos = 0
		for _, b := range e.Branches {
			stripGroupPositions(b)
		}
		return e
	case SubSelect:
		e.Pos = 0
		StripPositions(e.Query)
		return e
	case InlineData:
		e.Pos = 0
		return e
	case Bind:
		e.Pos = 0
		e.Expr = stripExprPositions(e.Expr)
		return e
	}
	return el
}

func stripExprPositions(x Expr) Expr {
	switch e := x.(type) {
	case ExprVar:
		e.Pos = 0
		return e
	case ExprBinary:
		e.L = stripExprPositions(e.L)
		e.R = stripExprPositions(e.R)
		return e
	case ExprUnary:
		e.X = stripExprPositions(e.X)
		return e
	case ExprCall:
		for i := range e.Args {
			e.Args[i] = stripExprPositions(e.Args[i])
		}
		return e
	case ExprExists:
		stripGroupPositions(e.Group)
		return e
	}
	return x
}
