package sparql

import (
	"errors"

	"encoding/json"
	"fmt"
	"io"

	"lusail/internal/rdf"
)

// RowReader is the pull interface over an incrementally decoded SPARQL
// result stream: rows become available one at a time, as they are parsed
// off the wire, instead of after the whole document has been materialized.
//
// Read returns the next solution aligned to Vars (unbound variables are
// zero Terms) and io.EOF after the last one; the returned slice is only
// valid until the next Read. Close releases the underlying source and is
// safe to call at any point, including mid-stream and more than once.
type RowReader interface {
	Vars() []string
	Read() ([]rdf.Term, error)
	Close() error
}

// BooleanReader is implemented by RowReaders that carry an ASK result.
// Boolean reports the value and whether the stream was a boolean document.
type BooleanReader interface {
	Boolean() (value, ok bool)
}

// JSONDecoder incrementally decodes a SPARQL 1.1 JSON results document
// ({"head":{"vars":[...]},"results":{"bindings":[...]}}): the head is
// parsed on construction and each bindings object is parsed on demand by
// Read, so a caller holds one row in memory instead of the whole result
// set. Boolean (ASK) documents are recognized; Read then reports io.EOF
// immediately and Boolean returns the value.
//
// The "head" member must precede "results", which every known endpoint
// (and this package's own writers) satisfies.
type JSONDecoder struct {
	rc  io.ReadCloser
	dec *json.Decoder

	vars    []string
	varIdx  map[string]int
	row     []rdf.Term
	raw     map[string]jsonTerm
	rows    int
	isBool  bool
	boolVal bool

	inBindings bool
	done       bool
	closed     bool
	err        error
}

// NewJSONDecoder reads the document head from rc and positions the decoder
// at the first binding. The decoder owns rc and closes it on Close.
func NewJSONDecoder(rc io.ReadCloser) (*JSONDecoder, error) {
	d := &JSONDecoder{rc: rc, dec: json.NewDecoder(rc)}
	if err := d.readHead(); err != nil {
		rc.Close()
		return nil, err
	}
	return d, nil
}

func (d *JSONDecoder) readHead() error {
	if err := d.expectDelim('{'); err != nil {
		return fmt.Errorf("sparql: results document: %w", unexpectedEOF(err))
	}
	for {
		tok, err := d.dec.Token()
		if err != nil {
			return fmt.Errorf("sparql: results document: %w", unexpectedEOF(err))
		}
		if delim, ok := tok.(json.Delim); ok && delim == '}' {
			// No results/boolean member at all: an empty (zero-row) stream.
			d.done = true
			return nil
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("sparql: results document: unexpected token %v", tok)
		}
		switch key {
		case "head":
			var h jsonHead
			if err := d.dec.Decode(&h); err != nil {
				return fmt.Errorf("sparql: results head: %w", unexpectedEOF(err))
			}
			d.vars = h.Vars
			d.varIdx = make(map[string]int, len(h.Vars))
			for i, v := range h.Vars {
				d.varIdx[v] = i
			}
			d.row = make([]rdf.Term, len(h.Vars))
		case "boolean":
			if err := d.dec.Decode(&d.boolVal); err != nil {
				return fmt.Errorf("sparql: boolean result: %w", unexpectedEOF(err))
			}
			d.isBool = true
			d.done = true
			return nil
		case "results":
			if err := d.expectDelim('{'); err != nil {
				return fmt.Errorf("sparql: results member: %w", unexpectedEOF(err))
			}
			for {
				tok, err := d.dec.Token()
				if err != nil {
					return fmt.Errorf("sparql: results member: %w", unexpectedEOF(err))
				}
				if delim, ok := tok.(json.Delim); ok && delim == '}' {
					d.done = true // results object without bindings
					return nil
				}
				innerKey, ok := tok.(string)
				if !ok {
					return fmt.Errorf("sparql: results member: unexpected token %v", tok)
				}
				if innerKey == "bindings" {
					if err := d.expectDelim('['); err != nil {
						return fmt.Errorf("sparql: bindings: %w", unexpectedEOF(err))
					}
					d.inBindings = true
					return nil
				}
				if err := d.skipValue(); err != nil {
					return err
				}
			}
		default:
			if err := d.skipValue(); err != nil {
				return err
			}
		}
	}
}

// unexpectedEOF converts a bare io.EOF from the underlying JSON decoder
// into io.ErrUnexpectedEOF: inside a document, running out of bytes means
// the body was cut off, and the result must never satisfy
// errors.Is(err, io.EOF) — that sentinel is reserved for a clean end of a
// complete bindings array.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (d *JSONDecoder) expectDelim(want json.Delim) error {
	tok, err := d.dec.Token()
	if err != nil {
		return unexpectedEOF(err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != want {
		return fmt.Errorf("expected %q, got %v", want, tok)
	}
	return nil
}

func (d *JSONDecoder) skipValue() error {
	var raw json.RawMessage
	if err := d.dec.Decode(&raw); err != nil {
		return fmt.Errorf("sparql: results document: %w", unexpectedEOF(err))
	}
	return nil
}

// Vars implements RowReader.
func (d *JSONDecoder) Vars() []string { return d.vars }

// Boolean implements BooleanReader.
func (d *JSONDecoder) Boolean() (bool, bool) { return d.boolVal, d.isBool }

// Rows returns the number of solutions decoded so far.
func (d *JSONDecoder) Rows() int { return d.rows }

// Read implements RowReader.
func (d *JSONDecoder) Read() ([]rdf.Term, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.done || d.closed {
		return nil, io.EOF
	}
	if !d.dec.More() {
		if err := d.finish(); err != nil {
			d.err = err
			return nil, err
		}
		d.done = true
		return nil, io.EOF
	}
	clear(d.raw)
	if d.raw == nil {
		d.raw = make(map[string]jsonTerm, len(d.vars))
	}
	if err := d.dec.Decode(&d.raw); err != nil {
		d.err = fmt.Errorf("sparql: decoding binding: %w", unexpectedEOF(err))
		return nil, d.err
	}
	for i := range d.row {
		d.row[i] = rdf.Term{}
	}
	for name, jt := range d.raw {
		i, ok := d.varIdx[name]
		if !ok {
			continue // a variable missing from head: ignore, as the batch parser does
		}
		t, err := termFromJSON(jt)
		if err != nil {
			d.err = fmt.Errorf("sparql: decoding binding: %w", unexpectedEOF(err))
			return nil, d.err
		}
		d.row[i] = t
	}
	d.rows++
	return d.row, nil
}

// finish consumes the document past the end of the bindings array so a
// well-formed tail is verified and the connection can be reused.
func (d *JSONDecoder) finish() error {
	if err := d.expectDelim(']'); err != nil {
		return fmt.Errorf("sparql: bindings: %w", unexpectedEOF(err))
	}
	// Remaining members of the results object, then of the top object.
	for depth := 2; depth > 0; {
		tok, err := d.dec.Token()
		if err != nil {
			return fmt.Errorf("sparql: results document: %w", unexpectedEOF(err))
		}
		if delim, ok := tok.(json.Delim); ok && delim == '}' {
			depth--
			continue
		}
		if _, ok := tok.(string); !ok {
			return fmt.Errorf("sparql: results document: unexpected token %v", tok)
		}
		if err := d.skipValue(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements RowReader.
func (d *JSONDecoder) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	return d.rc.Close()
}

// resultsReader adapts a materialized Results into a RowReader.
type resultsReader struct {
	res *Results
	i   int
}

// NewResultsReader returns a RowReader over an already-materialized result
// set — the adapter for endpoints that cannot stream (in-process stores).
func NewResultsReader(res *Results) RowReader {
	return &resultsReader{res: res}
}

func (r *resultsReader) Vars() []string { return r.res.Vars }

func (r *resultsReader) Boolean() (bool, bool) { return r.res.Boolean, r.res.IsBoolean }

func (r *resultsReader) Read() ([]rdf.Term, error) {
	if r.i >= len(r.res.Rows) {
		return nil, io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	return row, nil
}

func (r *resultsReader) Close() error {
	r.i = len(r.res.Rows)
	return nil
}

// ReadAllRows drains a RowReader into a materialized Results and closes
// it — the bridge from the streaming path back to batch callers. Boolean
// streams produce a boolean Results.
func ReadAllRows(r RowReader) (*Results, error) {
	defer r.Close()
	if br, ok := r.(BooleanReader); ok {
		if v, isBool := br.Boolean(); isBool {
			return BoolResults(v), nil
		}
	}
	res := NewResults(append([]string(nil), r.Vars()...))
	//lint:lusail-vet budgetbound -- callers hand in readers over MaxResponseBytes-limited bodies; the cap bounds the decoded total
	for {
		row, err := r.Read()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, append([]rdf.Term(nil), row...))
	}
}
