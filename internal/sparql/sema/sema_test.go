package sema

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lusail/internal/sparql"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGolden runs the full analyzer over every query in testdata/ and
// compares the rendered diagnostics (with positions) against the matching
// .golden file. Regenerate with: go test ./internal/sparql/sema -update
func TestGolden(t *testing.T) {
	queries, err := filepath.Glob(filepath.Join("testdata", "*.rq"))
	if err != nil || len(queries) == 0 {
		t.Fatalf("no testdata queries: %v", err)
	}
	for _, path := range queries {
		name := strings.TrimSuffix(filepath.Base(path), ".rq")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			q, err := sparql.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var b strings.Builder
			for _, d := range Analyze(q, string(src)) {
				b.WriteString(d.String())
				b.WriteString("\n")
			}
			got := b.String()
			goldenPath := strings.TrimSuffix(path, ".rq") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return q
}

func TestVetSplitsErrorTier(t *testing.T) {
	src := `SELECT ?s WHERE {
  ?s <http://p> ?o .
  ?lonely <http://q> ?island .
  FILTER(?nope > 1)
}`
	q := mustParse(t, src)
	semaErr, rest := Vet(q, src)
	if semaErr == nil {
		t.Fatal("expected error-tier findings")
	}
	for _, d := range semaErr.Diagnostics {
		if d.Severity != sparql.SevError {
			t.Errorf("non-error diagnostic in SemaError: %s", d)
		}
		if d.Line == 0 {
			t.Errorf("diagnostic lost line info: %+v", d)
		}
	}
	foundCartesian := false
	for _, d := range rest {
		if d.Severity == sparql.SevError {
			t.Errorf("error-tier diagnostic leaked into warnings: %s", d)
		}
		if d.Check == "cartesian" {
			foundCartesian = true
		}
	}
	if !foundCartesian {
		t.Errorf("expected cartesian warning alongside the error, got %v", rest)
	}

	clean := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o }`)
	if e, _ := Vet(clean, ""); e != nil {
		t.Errorf("clean query rejected: %v", e)
	}
}

func TestByName(t *testing.T) {
	cs, err := ByName([]string{"cartesian", "unboundvar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "unboundvar" || cs[1].Name != "cartesian" {
		t.Errorf("ByName order/content wrong: %v", cs)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Error("unknown check accepted")
	}
}

func TestErrorsNotSuppressible(t *testing.T) {
	src := `# lusail-check: unboundvar -- trying to silence an error
SELECT ?s WHERE {
  ?s <http://p> ?o .
  FILTER(?nope > 1)
}`
	q := mustParse(t, src)
	semaErr, rest := Vet(q, src)
	if semaErr == nil {
		t.Fatal("error-tier finding was suppressed")
	}
	// The directive covered nothing (errors are exempt), so it must be
	// flagged as unused.
	foundUnused := false
	for _, d := range rest {
		if d.Check == DirectiveCheck && strings.Contains(d.Message, "unused") {
			foundUnused = true
		}
	}
	if !foundUnused {
		t.Errorf("expected unused-directive finding, got %v", rest)
	}
}

// --- Rewrites ---

func TestRewriteConstFoldAndDeadFilter(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o . FILTER(1 < 2) . FILTER(?o > 2 + 3) }`)
	out, notes := Rewrite(q)
	s := out.String()
	if strings.Contains(s, "1") && strings.Contains(s, "<http://p>") && strings.Count(s, "FILTER") != 1 {
		t.Errorf("constant-true filter not removed: %s", s)
	}
	if !strings.Contains(s, "\"5\"") {
		t.Errorf("2 + 3 not folded: %s", s)
	}
	if len(notes) == 0 {
		t.Error("no rewrite notes")
	}
	// Input untouched.
	if strings.Count(q.String(), "FILTER") != 2 {
		t.Errorf("input query mutated: %s", q.String())
	}
}

func TestRewriteDedup(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o . ?s <http://p> ?o . ?s <http://q> ?z }`)
	out, _ := Rewrite(q)
	if n := len(out.Where.TriplePatterns()); n != 2 {
		t.Errorf("dedup left %d patterns: %s", n, out.String())
	}
}

func TestRewriteDeadOptional(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?z . FILTER(FALSE) } }`)
	out, _ := Rewrite(q)
	if strings.Contains(out.String(), "OPTIONAL") {
		t.Errorf("dead OPTIONAL survived: %s", out.String())
	}
}

func TestRewriteDeadUnionBranch(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o . FILTER(1 = 2) } }`)
	out, _ := Rewrite(q)
	if strings.Contains(out.String(), "UNION") {
		t.Errorf("dead UNION branch survived: %s", out.String())
	}
	// All-dead unions must keep one branch: the group still yields no rows.
	q2 := mustParse(t, `SELECT ?s WHERE { { ?s <http://p> ?o . FILTER(FALSE) } UNION { ?s <http://q> ?o . FILTER(FALSE) } }`)
	out2, _ := Rewrite(q2)
	if !strings.Contains(out2.String(), "FILTER") {
		t.Errorf("all-dead union lost its emptiness: %s", out2.String())
	}
}

func TestRewriteFilterPushdown(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		?s <http://name> ?n .
		{ ?s <http://p> ?o } UNION { ?s <http://q> ?o }
		FILTER(?o > 5)
	}`)
	out, notes := Rewrite(q)
	s := out.String()
	if strings.Count(s, "FILTER") != 2 {
		t.Errorf("filter not pushed into both branches: %s", s)
	}
	pushed := false
	for _, n := range notes {
		if strings.HasPrefix(n, "pushdown:") {
			pushed = true
		}
	}
	if !pushed {
		t.Errorf("no pushdown note: %v", notes)
	}

	// A filter whose variable is NOT certainly bound by every branch must
	// stay at group level.
	q2 := mustParse(t, `SELECT ?s WHERE {
		?s <http://name> ?n .
		{ ?s <http://p> ?o } UNION { ?s <http://q> ?w }
		FILTER(?o > 5)
	}`)
	out2, _ := Rewrite(q2)
	if strings.Count(out2.String(), "FILTER") != 1 {
		t.Errorf("unsound pushdown happened: %s", out2.String())
	}
}

func TestRewritePreservesErroringExpressions(t *testing.T) {
	// 1/0 errors; !error is error (row dropped), while !false would be
	// true (row kept). The folder must not touch it.
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o . FILTER(!(1 / 0 > 1)) }`)
	out, _ := Rewrite(q)
	if !strings.Contains(out.String(), "/") {
		t.Errorf("erroring subexpression was folded: %s", out.String())
	}
}

// --- Canonicalization ---

func TestCanonicalKeyMergesSpellings(t *testing.T) {
	a := mustParse(t, `PREFIX ub: <http://lubm.org/u#>
		SELECT ?x WHERE { ?x ub:advisor ?prof . ?prof ub:worksFor ?dept . FILTER(?prof != ?dept) }`)
	b := mustParse(t, `SELECT   ?x
		WHERE {
			?p2 <http://lubm.org/u#worksFor>    ?d2 .
			FILTER(?p2 != ?d2)
			?x <http://lubm.org/u#advisor> ?p2 .
		}`)
	if Key(a) != Key(b) {
		t.Errorf("α-renamed/reformatted spellings got different keys:\n%s\n%s", CanonicalText(a), CanonicalText(b))
	}
}

func TestCanonicalKeySeparatesDifferentQueries(t *testing.T) {
	cases := [][2]string{
		{`SELECT ?x WHERE { ?x <http://p> ?y }`, `SELECT ?y WHERE { ?x <http://p> ?y }`},
		{`SELECT ?x WHERE { ?x <http://p> ?y }`, `SELECT DISTINCT ?x WHERE { ?x <http://p> ?y }`},
		{`SELECT ?x WHERE { ?x <http://p> ?y }`, `SELECT ?x WHERE { ?x <http://p> ?y } LIMIT 5`},
		{`SELECT ?x WHERE { ?x <http://p> ?y . OPTIONAL { ?y <http://q> ?z } }`,
			`SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z }`},
		{`SELECT ?x WHERE { ?x <http://p> "a" }`, `SELECT ?x WHERE { ?x <http://p> "b" }`},
		// Same skeleton, different join structure: must NOT merge.
		{`SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://q> ?z }`,
			`SELECT ?x WHERE { ?x <http://p> ?y . ?x <http://q> ?z }`},
	}
	for _, c := range cases {
		a, b := mustParse(t, c[0]), mustParse(t, c[1])
		if Key(a) == Key(b) {
			t.Errorf("semantically different queries share a key:\n  %s\n  %s\ncanonical: %s", c[0], c[1], CanonicalText(a))
		}
	}
}

func TestCanonicalStarKeepsNames(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?alpha <http://p> ?beta }`)
	text := CanonicalText(q)
	if !strings.Contains(text, "?alpha") || !strings.Contains(text, "?beta") {
		t.Errorf("SELECT * variables were renamed: %s", text)
	}
}

func TestCanonicalDoesNotMutateInput(t *testing.T) {
	q := mustParse(t, `SELECT ?x WHERE { ?x <http://p> ?internal . FILTER(?internal > 1) }`)
	before := q.String()
	_ = Key(q)
	if q.String() != before {
		t.Errorf("canonicalization mutated its input: %s", q.String())
	}
}

func TestCanonicalOrderInsensitiveOnlyWithinRuns(t *testing.T) {
	// Patterns must not be reordered across an OPTIONAL: left-join order
	// is semantics.
	a := mustParse(t, `SELECT ?x WHERE { ?x <http://b> ?y . OPTIONAL { ?y <http://o> ?z } . ?x <http://a> ?w }`)
	b := mustParse(t, `SELECT ?x WHERE { ?x <http://a> ?w . ?x <http://b> ?y . OPTIONAL { ?y <http://o> ?z } }`)
	if Key(a) == Key(b) {
		t.Error("patterns were reordered across an OPTIONAL boundary")
	}
}

// TestSemaRegistryMatchesDocs pins the check registry: the five documented
// checks, in suite order, each carrying a Doc — and every name must appear
// in README.md's query-analysis table and DESIGN.md §12, so the registry
// and the docs cannot drift apart.
func TestSemaRegistryMatchesDocs(t *testing.T) {
	want := []string{"unboundvar", "cartesian", "filtersat", "duppattern", "optwelldesigned"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d checks, want %d", len(all), len(want))
	}
	for i, c := range all {
		if c.Name != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, c.Name, want[i])
		}
		if strings.TrimSpace(c.Doc) == "" {
			t.Errorf("check %s has no Doc", c.Name)
		}
	}
	for _, file := range []string{"../../../README.md", "../../../DESIGN.md"} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range want {
			if !strings.Contains(string(data), name) {
				t.Errorf("%s does not mention check %s", file, name)
			}
		}
	}
}
