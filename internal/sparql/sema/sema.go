// Package sema is lusail's static semantic analyzer for SPARQL queries: a
// registry of named checks over the parsed sparql.Query AST, a set of
// provably row-multiset-preserving rewrites, and a canonical normal form
// whose hash keys the server's plan cache.
//
// It mirrors the internal/lint architecture (named analyzers, structured
// diagnostics with positions, severity tiers) but targets the query
// language instead of the host language: Lusail's whole premise is
// deciding where and how to evaluate a query before sending anything over
// the network, and a malformed-but-parseable query (unbound FILTER
// variables, accidental cross products, unsatisfiable filters) otherwise
// sails straight into LADE decomposition and burns endpoint traffic before
// failing or returning garbage.
//
// Severity tiers follow sparql.Severity: error-tier findings describe
// queries that cannot mean what they say (the engine rejects them with a
// typed *sparql.SemaError before decomposition, and lusaild answers 400
// without spending an admission slot); warnings flag likely mistakes with
// well-defined answers and thread into Profile.Warnings; infos are cost
// notes.
//
// A deliberate finding is suppressed with a justified directive comment in
// the query text itself:
//
//	# lusail-check: cartesian -- bound-join bridging handles the cross product
//
// Directives are global to the query, apply only to warning- and info-tier
// findings (errors are never suppressible — the engine could not execute
// the query anyway), and are themselves checked: a malformed or unused
// directive is a diagnostic, so suppressions cannot rot. See the "Query
// analysis" section of README.md and DESIGN.md §12.
package sema

import (
	"fmt"
	"sort"
	"strings"

	"lusail/internal/sparql"
)

// Check is one semantic analyzer over a parsed query.
type Check struct {
	// Name is the identifier used in output and suppression directives.
	Name string
	// Doc is a one-paragraph description of what the check flags.
	Doc string
	// Severity is the tier the check's findings carry.
	Severity sparql.Severity
	// Run reports the check's findings through the pass.
	Run func(*Pass)
}

// Pass carries one check's view of the query under analysis.
type Pass struct {
	Check *Check
	// Query is the parsed query under analysis. Checks must not mutate it.
	Query *sparql.Query
	// Src is the original query text when available ("" when analyzing a
	// programmatically built AST); it supplies line/column positions.
	Src string

	diags *[]sparql.SemaDiagnostic
}

// Reportf records a finding at the given byte offset with the check's
// severity tier.
func (p *Pass) Reportf(pos int, format string, args ...any) {
	p.report(p.Check.Severity, pos, format, args...)
}

// ReportfSeverity records a finding at an explicit tier, for checks whose
// findings vary in severity.
func (p *Pass) ReportfSeverity(sev sparql.Severity, pos int, format string, args ...any) {
	p.report(sev, pos, format, args...)
}

func (p *Pass) report(sev sparql.Severity, pos int, format string, args ...any) {
	d := sparql.SemaDiagnostic{
		Check:    p.Check.Name,
		Severity: sev,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	}
	if p.Src != "" {
		d.Line, d.Col = sparql.LineCol(p.Src, pos)
	}
	*p.diags = append(*p.diags, d)
}

// All returns the full check suite in output order.
func All() []*Check {
	return []*Check{
		checkUnboundVar,
		checkCartesian,
		checkFilterSat,
		checkDupPattern,
		checkOptWellDesigned,
	}
}

// ByName returns the named checks from All, preserving suite order, or an
// error naming the first unknown entry.
func ByName(names []string) ([]*Check, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []*Check
	for _, c := range All() {
		if want[c.Name] {
			out = append(out, c)
			delete(want, c.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("sema: unknown check %q", n)
	}
	return out, nil
}

// DirectiveCheck is the pseudo-check name under which malformed and unused
// suppression directives are reported. It cannot be suppressed.
const DirectiveCheck = "directive"

// Analyze runs the full check suite over the query and returns the
// surviving diagnostics sorted by position. src, when non-empty, is the
// original query text: it supplies line/column positions and is scanned
// for suppression directives.
func Analyze(q *sparql.Query, src string) []sparql.SemaDiagnostic {
	return AnalyzeWith(q, src, All())
}

// AnalyzeWith is Analyze restricted to the given checks.
func AnalyzeWith(q *sparql.Query, src string, checks []*Check) []sparql.SemaDiagnostic {
	var raw []sparql.SemaDiagnostic
	for _, c := range checks {
		c.Run(&Pass{Check: c, Query: q, Src: src, diags: &raw})
	}

	running := map[string]bool{}
	for _, c := range checks {
		running[c.Name] = true
	}
	dirs := parseDirectives(src, running)
	var out []sparql.SemaDiagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range dirs {
			if dir.covers(d) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		d := sparql.SemaDiagnostic{Check: DirectiveCheck, Severity: sparql.SevWarning, Pos: dir.pos}
		switch {
		case dir.bad != "":
			d.Message = dir.bad
		case !dir.used:
			d.Message = "unused suppression directive: nothing to suppress here; delete it"
		default:
			continue
		}
		if src != "" {
			d.Line, d.Col = sparql.LineCol(src, dir.pos)
		}
		out = append(out, d)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// Vet runs Analyze and splits the result: error-tier findings become a
// typed *sparql.SemaError (nil when the query is clean), the rest are
// returned for warning channels. This is the entry point the engine and
// lusaild share, so a query rejected at the API edge is exactly one the
// engine would have rejected.
func Vet(q *sparql.Query, src string) (*sparql.SemaError, []sparql.SemaDiagnostic) {
	diags := Analyze(q, src)
	var errs, rest []sparql.SemaDiagnostic
	for _, d := range diags {
		if d.Severity == sparql.SevError {
			errs = append(errs, d)
		} else {
			rest = append(rest, d)
		}
	}
	if len(errs) > 0 {
		return &sparql.SemaError{Diagnostics: errs}, rest
	}
	return nil, rest
}

// directivePrefix introduces a suppression comment inside the query text.
const directivePrefix = "# lusail-check:"

// directive is one parsed suppression comment.
type directive struct {
	pos    int
	checks []string
	bad    string // non-empty: malformed, with reason
	used   bool
}

// covers reports whether the directive suppresses the diagnostic.
// Directives are query-global (SPARQL has no stable line structure worth
// anchoring to) and never cover error-tier findings or other directive
// findings.
func (d *directive) covers(diag sparql.SemaDiagnostic) bool {
	if d.bad != "" || diag.Severity == sparql.SevError || diag.Check == DirectiveCheck {
		return false
	}
	for _, c := range d.checks {
		if c == diag.Check {
			return true
		}
	}
	return false
}

// parseDirectives extracts suppression directives from the query source's
// comment lines, validating check names against the checks being run.
func parseDirectives(src string, running map[string]bool) []*directive {
	if src == "" {
		return nil
	}
	known := map[string]bool{}
	for _, c := range All() {
		known[c.Name] = true
	}
	var out []*directive
	offset := 0
	for _, line := range strings.SplitAfter(src, "\n") {
		trimmed := strings.TrimLeft(line, " \t")
		pos := offset + (len(line) - len(trimmed))
		offset += len(line)
		rest, ok := strings.CutPrefix(strings.TrimRight(trimmed, "\r\n"), directivePrefix)
		if !ok {
			continue
		}
		d := &directive{pos: pos}
		out = append(out, d)
		names, justification, found := strings.Cut(rest, " -- ")
		if !found || strings.TrimSpace(justification) == "" {
			d.bad = "suppression without justification: append \" -- <why this is safe>\""
			continue
		}
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				d.bad = fmt.Sprintf("unknown check %q in suppression", n)
				break
			}
			if running[n] {
				d.checks = append(d.checks, n)
			} else {
				// The check is not part of this run; the directive cannot be
				// marked used, so don't hold it to the unused check.
				d.used = true
			}
		}
		if d.bad == "" && len(d.checks) == 0 && !d.used {
			d.bad = "suppression names no check"
		}
	}
	return out
}
