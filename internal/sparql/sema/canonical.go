package sema

import (
	"crypto/sha256"
	"encoding/hex"
	"regexp"
	"sort"
	"strings"

	"lusail/internal/sparql"
)

// Canonicalization: a normal form for parsed queries such that two
// syntactic spellings of the same query — different whitespace, prefix
// declarations, join-commutative pattern order, union branch order, or
// internal variable names — serialize identically. The sha256 of the
// canonical text is the plan-cache key (server.PlanCache), so spelling
// variants share one cached plan.
//
// Soundness direction matters: the canonical form must never merge two
// queries with different semantics (a false merge serves wrong answers
// from the cache); failing to merge two equivalent queries only costs a
// duplicate plan build. Every transformation below is therefore
// individually row-multiset-preserving:
//
//   - whitespace/prefix normalization: Query.String always emits absolute
//     IRIs and single spacing.
//   - pattern sorting: only contiguous runs of triple patterns are sorted
//     (join is commutative and associative); patterns never move across
//     OPTIONAL/BIND/VALUES elements, whose left-join and scope semantics
//     are order-sensitive.
//   - filter placement: FILTERs apply to their whole group regardless of
//     position (SPARQL 2007 §5.2.2), so they sort to the group's end.
//   - union branch sorting: union is commutative.
//   - α-renaming: a globally consistent injective renaming of variable
//     names preserves semantics; names in the output schema (SELECT
//     projections, or every variable under SELECT *) are fixed points, so
//     the result header is untouched.
func canonicalQuery(q *sparql.Query) *sparql.Query {
	out := cloneQuery(q)
	out.Prefixes = nil
	// First sort with a variable-blind key so the order is independent of
	// the original variable spelling, then α-rename in traversal order,
	// then re-sort with the full serialization so ties between
	// skeleton-equal patterns are broken deterministically.
	sortQuery(out, true)
	alphaRename(out)
	sortQuery(out, false)
	return out
}

// CanonicalText returns the canonical serialization of the query.
func CanonicalText(q *sparql.Query) string {
	return canonicalQuery(q).String()
}

// Key returns the plan-cache key for the query: the hex sha256 of its
// canonical text.
func Key(q *sparql.Query) string {
	return KeyOf(CanonicalText(q))
}

// KeyOf hashes an already-computed canonical text, so a caller that needs
// both the text and the key canonicalizes once.
func KeyOf(canonicalText string) string {
	sum := sha256.Sum256([]byte(canonicalText))
	return hex.EncodeToString(sum[:])
}

// elementKey renders a sort key for an element. varBlind replaces every
// variable with "?" so the key ignores naming.
func elementString(el sparql.Element) string {
	g := &sparql.GroupPattern{Elements: []sparql.Element{el}}
	return groupString(g)
}

func groupString(g *sparql.GroupPattern) string {
	return (&sparql.Query{Form: sparql.AskForm, Where: g, Limit: -1}).String()
}

var varTokenRE = regexp.MustCompile(`\?[A-Za-z0-9_]+`)

// blindString erases variable names from a serialization, so the first
// sort pass orders elements independently of the original spelling.
func blindString(s string) string {
	return varTokenRE.ReplaceAllString(s, "?")
}

// sortQuery applies the order normalization everywhere in the query. blind
// selects the variable-blind key for the pre-rename pass.
func sortQuery(q *sparql.Query, blind bool) {
	sortGroup(q.Where, blind)
}

// sortGroup normalizes one group's element order (recursing first so
// nested serializations are already canonical when used as sort keys):
// contiguous triple-pattern runs are sorted, filters move to the end in
// sorted order, and union branches are sorted. All other elements keep
// their relative order.
func sortGroup(g *sparql.GroupPattern, blind bool) {
	key := func(el sparql.Element) string {
		s := elementString(el)
		if blind {
			return blindString(s)
		}
		return s
	}
	bkey := func(b *sparql.GroupPattern) string {
		s := groupString(b)
		if blind {
			return blindString(s)
		}
		return s
	}
	if g == nil {
		return
	}
	for i, el := range g.Elements {
		switch e := el.(type) {
		case sparql.Optional:
			sortGroup(e.Group, blind)
		case sparql.Union:
			for _, b := range e.Branches {
				sortGroup(b, blind)
			}
			sort.SliceStable(e.Branches, func(x, y int) bool {
				return bkey(e.Branches[x]) < bkey(e.Branches[y])
			})
			g.Elements[i] = e
		case sparql.SubSelect:
			sortGroup(e.Query.Where, blind)
		case sparql.Filter:
			e.Expr = sortExprGroups(e.Expr, blind)
			g.Elements[i] = e
		}
	}

	var body, filters []sparql.Element
	for _, el := range g.Elements {
		if _, ok := el.(sparql.Filter); ok {
			filters = append(filters, el)
		} else {
			body = append(body, el)
		}
	}
	// Sort each contiguous run of triple patterns.
	for start := 0; start < len(body); {
		if _, ok := body[start].(sparql.TriplePattern); !ok {
			start++
			continue
		}
		end := start
		for end < len(body) {
			if _, ok := body[end].(sparql.TriplePattern); !ok {
				break
			}
			end++
		}
		run := body[start:end]
		sort.SliceStable(run, func(x, y int) bool { return key(run[x]) < key(run[y]) })
		start = end
	}
	sort.SliceStable(filters, func(x, y int) bool { return key(filters[x]) < key(filters[y]) })
	g.Elements = append(body, filters...)
}

// sortExprGroups canonicalizes groups nested inside EXISTS expressions.
func sortExprGroups(x sparql.Expr, blind bool) sparql.Expr {
	switch e := x.(type) {
	case sparql.ExprExists:
		sortGroup(e.Group, blind)
		return e
	case sparql.ExprBinary:
		e.L = sortExprGroups(e.L, blind)
		e.R = sortExprGroups(e.R, blind)
		return e
	case sparql.ExprUnary:
		e.X = sortExprGroups(e.X, blind)
		return e
	case sparql.ExprCall:
		for i := range e.Args {
			e.Args[i] = sortExprGroups(e.Args[i], blind)
		}
		return e
	}
	return x
}

// alphaRename renames every variable that is not part of the query's
// output schema to a positional name (_0, _1, ...) assigned in traversal
// order. The renaming is global and injective — two occurrences of one
// name always map to one name, and distinct names never collide — which
// preserves semantics even across sub-select scope boundaries (a shared
// spelling stays shared, a distinct spelling stays distinct). Queries that
// already use a _N-style or otherwise colliding name skip renaming: the
// canonical form is then merely less aggressive, never wrong.
func alphaRename(q *sparql.Query) {
	protected := map[string]bool{}
	switch {
	case q.Form == sparql.SelectForm && (q.Star || len(q.Projection) == 0):
		// SELECT *: every variable name is part of the result header.
		return
	case q.Form == sparql.SelectForm:
		for _, p := range q.Projection {
			protected[p.Var] = true
		}
	}

	rename := map[string]string{}
	next := 0
	assign := func(name string) string {
		if name == "" || protected[name] {
			return name
		}
		if n, ok := rename[name]; ok {
			return n
		}
		n := "_" + itoa(next)
		next++
		rename[name] = n
		return n
	}

	// Refuse to rename when any existing name could collide with the
	// generated namespace.
	collision := false
	forEachVarName(q, func(name string) string {
		if strings.HasPrefix(name, "_") {
			collision = true
		}
		return name
	})
	if collision {
		return
	}
	forEachVarName(q, assign)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// forEachVarName visits every variable-name occurrence in the query in
// deterministic traversal order, replacing it with the function's return
// value.
func forEachVarName(q *sparql.Query, fn func(string) string) {
	var walkGroup func(g *sparql.GroupPattern)
	var walkExpr func(x sparql.Expr) sparql.Expr

	walkTerm := func(pt sparql.PatternTerm) sparql.PatternTerm {
		if pt.IsVar() {
			pt.Var = fn(pt.Var)
		}
		return pt
	}
	walkPattern := func(tp sparql.TriplePattern) sparql.TriplePattern {
		tp.S = walkTerm(tp.S)
		tp.P = walkTerm(tp.P)
		tp.O = walkTerm(tp.O)
		return tp
	}
	walkExpr = func(x sparql.Expr) sparql.Expr {
		switch e := x.(type) {
		case sparql.ExprVar:
			e.Name = fn(e.Name)
			return e
		case sparql.ExprBinary:
			e.L = walkExpr(e.L)
			e.R = walkExpr(e.R)
			return e
		case sparql.ExprUnary:
			e.X = walkExpr(e.X)
			return e
		case sparql.ExprCall:
			for i := range e.Args {
				e.Args[i] = walkExpr(e.Args[i])
			}
			return e
		case sparql.ExprExists:
			walkGroup(e.Group)
			return e
		}
		return x
	}
	var walkQuery func(q *sparql.Query)
	walkGroup = func(g *sparql.GroupPattern) {
		if g == nil {
			return
		}
		for i, el := range g.Elements {
			switch e := el.(type) {
			case sparql.TriplePattern:
				g.Elements[i] = walkPattern(e)
			case sparql.Filter:
				e.Expr = walkExpr(e.Expr)
				g.Elements[i] = e
			case sparql.Optional:
				walkGroup(e.Group)
			case sparql.Union:
				for _, b := range e.Branches {
					walkGroup(b)
				}
			case sparql.SubSelect:
				walkQuery(e.Query)
			case sparql.InlineData:
				for j, v := range e.Vars {
					e.Vars[j] = fn(v)
				}
				g.Elements[i] = e
			case sparql.Bind:
				e.Var = fn(e.Var)
				e.Expr = walkExpr(e.Expr)
				g.Elements[i] = e
			}
		}
	}
	walkQuery = func(q *sparql.Query) {
		for i, p := range q.Projection {
			q.Projection[i].Var = fn(p.Var)
			if p.Agg != nil && p.Agg.Var != "" {
				p.Agg.Var = fn(p.Agg.Var)
			}
		}
		walkGroup(q.Where)
		for i, tp := range q.Template {
			q.Template[i] = walkPattern(tp)
		}
		for i, v := range q.GroupBy {
			q.GroupBy[i] = fn(v)
		}
		for i := range q.OrderBy {
			q.OrderBy[i].Var = fn(q.OrderBy[i].Var)
		}
	}
	walkQuery(q)
}
