package sema

import (
	"errors"
	"sort"
	"strings"

	"lusail/internal/eval"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// possibleVars collects every variable the group can bind in some
// solution: triple patterns, VALUES, BIND outputs, OPTIONAL bodies, UNION
// branches — and for sub-selects only the projected variables, which is
// what distinguishes this from GroupPattern.Vars (sub-select internals are
// out of scope for the enclosing group).
func possibleVars(g *sparql.GroupPattern, into map[string]bool) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case sparql.TriplePattern:
			for _, v := range e.Vars() {
				into[v] = true
			}
		case sparql.Optional:
			possibleVars(e.Group, into)
		case sparql.Union:
			for _, b := range e.Branches {
				possibleVars(b, into)
			}
		case sparql.SubSelect:
			for _, v := range e.Query.ProjectedVars() {
				into[v] = true
			}
		case sparql.InlineData:
			for _, v := range e.Vars {
				into[v] = true
			}
		case sparql.Bind:
			into[e.Var] = true
		}
	}
}

// requiredVars is possibleVars restricted to the group's non-OPTIONAL
// elements: the variables the required part of the group can bind.
func requiredVars(g *sparql.GroupPattern) map[string]bool {
	out := map[string]bool{}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case sparql.TriplePattern:
			for _, v := range e.Vars() {
				out[v] = true
			}
		case sparql.Union:
			for _, b := range e.Branches {
				possibleVars(b, out)
			}
		case sparql.SubSelect:
			for _, v := range e.Query.ProjectedVars() {
				out[v] = true
			}
		case sparql.InlineData:
			for _, v := range e.Vars {
				out[v] = true
			}
		case sparql.Bind:
			out[e.Var] = true
		}
	}
	return out
}

// varsOutsideBound returns the variables an expression uses positionally —
// excluding occurrences that appear only as the argument of BOUND(...),
// whose entire point is to test an unbound variable, and excluding
// EXISTS-scoped variables (the EXISTS group binds its own).
func varsOutsideBound(x sparql.Expr) []string {
	seen := map[string]bool{}
	var walk func(sparql.Expr)
	walk = func(x sparql.Expr) {
		switch e := x.(type) {
		case sparql.ExprVar:
			seen[e.Name] = true
		case sparql.ExprBinary:
			walk(e.L)
			walk(e.R)
		case sparql.ExprUnary:
			walk(e.X)
		case sparql.ExprCall:
			if strings.EqualFold(e.Func, "BOUND") {
				return
			}
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(x)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// forEachGroup visits every group pattern in the query — the WHERE clause,
// OPTIONAL bodies, UNION branches, EXISTS blocks, and sub-select WHEREs —
// passing the set of variables inherited from the enclosing scope.
// Per SPARQL semantics only two constructs see enclosing bindings: a
// FILTER directly inside an OPTIONAL group becomes the left-join condition
// and sees the left side, and EXISTS blocks are evaluated under the
// current solution. Nested plain groups, UNION branches, and sub-selects
// evaluate against fresh scope.
func forEachGroup(q *sparql.Query, visit func(g *sparql.GroupPattern, inherited map[string]bool)) {
	var walkGroup func(g *sparql.GroupPattern, inherited map[string]bool)
	var walkExpr func(x sparql.Expr, scope map[string]bool)

	walkExpr = func(x sparql.Expr, scope map[string]bool) {
		switch e := x.(type) {
		case sparql.ExprBinary:
			walkExpr(e.L, scope)
			walkExpr(e.R, scope)
		case sparql.ExprUnary:
			walkExpr(e.X, scope)
		case sparql.ExprCall:
			for _, a := range e.Args {
				walkExpr(a, scope)
			}
		case sparql.ExprExists:
			walkGroup(e.Group, scope)
		}
	}

	walkGroup = func(g *sparql.GroupPattern, inherited map[string]bool) {
		if g == nil {
			return
		}
		visit(g, inherited)
		scope := map[string]bool{}
		for v := range inherited {
			scope[v] = true
		}
		possibleVars(g, scope)
		for _, el := range g.Elements {
			switch e := el.(type) {
			case sparql.Filter:
				walkExpr(e.Expr, scope)
			case sparql.Optional:
				walkGroup(e.Group, scope)
			case sparql.Union:
				for _, b := range e.Branches {
					walkGroup(b, nil)
				}
			case sparql.SubSelect:
				forEachGroupInQuery(e.Query, walkGroup)
			case sparql.Bind:
				walkExpr(e.Expr, scope)
			}
		}
	}
	forEachGroupInQuery(q, walkGroup)
}

func forEachGroupInQuery(q *sparql.Query, walkGroup func(*sparql.GroupPattern, map[string]bool)) {
	walkGroup(q.Where, nil)
}

// checkUnboundVar flags variables used where SPARQL semantics silently
// swallow the mistake: a FILTER over a variable its group never binds
// errors on every row and removes all of them (error tier); projected and
// aggregated variables never bound yield an always-empty column (error
// tier); ORDER BY / GROUP BY / CONSTRUCT-template variables never bound
// order or group by nothing (warning tier).
var checkUnboundVar = &Check{
	Name:     "unboundvar",
	Severity: sparql.SevError,
	Doc: "variable used in FILTER, SELECT, ORDER BY, GROUP BY, or a CONSTRUCT template\n" +
		"but never bound by any pattern in its scope. Per SPARQL semantics a FILTER over\n" +
		"an unbound variable errors and removes every row, and an unbound projection is\n" +
		"an always-empty column — the query runs, returns nothing useful, and burns\n" +
		"endpoint traffic doing it.",
	Run: func(p *Pass) {
		q := p.Query

		// FILTERs: checked group by group, because a filter only sees its
		// own group's bindings (plus the left side when it is the condition
		// of an OPTIONAL, plus the enclosing solution inside EXISTS).
		forEachGroup(q, func(g *sparql.GroupPattern, inherited map[string]bool) {
			scope := map[string]bool{}
			for v := range inherited {
				scope[v] = true
			}
			possibleVars(g, scope)
			for _, el := range g.Elements {
				f, ok := el.(sparql.Filter)
				if !ok {
					continue
				}
				for _, v := range varsOutsideBound(f.Expr) {
					if !scope[v] {
						p.Reportf(f.Pos, "FILTER references ?%s, which is never bound in its group: the constraint errors on every row and removes all of them", v)
					}
				}
			}
		})

		whereVars := map[string]bool{}
		possibleVars(q.Where, whereVars)

		outputs := map[string]bool{}
		for _, pr := range q.Projection {
			outputs[pr.Var] = true
			if pr.Agg == nil {
				if !whereVars[pr.Var] {
					p.Reportf(pr.Pos, "SELECT projects ?%s, which is never bound in the WHERE clause: the column is always empty", pr.Var)
				}
			} else if pr.Agg.Var != "" && !whereVars[pr.Agg.Var] {
				p.Reportf(pr.Pos, "aggregate %s(?%s) reads a variable never bound in the WHERE clause", pr.Agg.Func, pr.Agg.Var)
			}
		}
		for _, oc := range q.OrderBy {
			if !whereVars[oc.Var] && !outputs[oc.Var] {
				p.ReportfSeverity(sparql.SevWarning, oc.Pos, "ORDER BY ?%s, which is never bound: every row sorts equal", oc.Var)
			}
		}
		for _, gv := range q.GroupBy {
			if !whereVars[gv] {
				p.ReportfSeverity(sparql.SevWarning, q.Where.Pos, "GROUP BY ?%s, which is never bound: all rows collapse into one group", gv)
			}
		}
		for _, tp := range q.Template {
			for _, v := range tp.Vars() {
				if !whereVars[v] {
					p.ReportfSeverity(sparql.SevWarning, tp.Pos, "CONSTRUCT template uses ?%s, which is never bound: its triples are never emitted", v)
				}
			}
		}
	},
}

// joinNode is one union-find node for the cartesian check: an element that
// contributes rows to its group's join, with the variables it can bind.
type joinNode struct {
	vars    []string
	pos     int
	display string
}

// checkCartesian warns when a group's required elements split into
// disconnected components: the group's result is then the full cross
// product of the components, which federated execution makes punishingly
// expensive (every component's rows ship over the network and multiply).
// The engine's connectivity-aware subquery ordering and bound-join
// bridging keep such queries executable, but the cost is almost never what
// the author intended.
var checkCartesian = &Check{
	Name:     "cartesian",
	Severity: sparql.SevWarning,
	Doc: "the required elements of a group share no variables and split into two or\n" +
		"more disconnected components, so the group's result is their cross product.\n" +
		"Federated execution multiplies every component's rows over the network;\n" +
		"deliberate cross products should carry a suppression directive.",
	Run: func(p *Pass) {
		forEachGroup(p.Query, func(g *sparql.GroupPattern, _ map[string]bool) {
			var nodes []joinNode
			dataNodes := 0
			for _, el := range g.Elements {
				switch e := el.(type) {
				case sparql.TriplePattern:
					vars := e.Vars()
					if len(vars) == 0 {
						// A fully ground pattern is a boolean gate, not a
						// row multiplier; it cannot form a cross product.
						continue
					}
					nodes = append(nodes, joinNode{vars: vars, pos: e.Pos, display: patternDisplay(e)})
					dataNodes++
				case sparql.Union:
					var vars map[string]bool = map[string]bool{}
					for _, b := range e.Branches {
						possibleVars(b, vars)
					}
					nodes = append(nodes, joinNode{vars: keys(vars), pos: e.Pos, display: "UNION block"})
					dataNodes++
				case sparql.SubSelect:
					nodes = append(nodes, joinNode{vars: e.Query.ProjectedVars(), pos: e.Pos, display: "sub-select"})
					dataNodes++
				case sparql.InlineData:
					nodes = append(nodes, joinNode{vars: e.Vars, pos: e.Pos, display: "VALUES block"})
				case sparql.Bind:
					vars := append([]string{e.Var}, sparql.ExprVars(e.Expr)...)
					nodes = append(nodes, joinNode{vars: vars, pos: e.Pos, display: "BIND"})
				}
			}
			if dataNodes < 2 {
				return
			}

			// Union-find over shared variables.
			parent := make([]int, len(nodes))
			for i := range parent {
				parent[i] = i
			}
			var find func(int) int
			find = func(i int) int {
				for parent[i] != i {
					parent[i] = parent[parent[i]]
					i = parent[i]
				}
				return i
			}
			byVar := map[string]int{}
			for i, n := range nodes {
				for _, v := range n.vars {
					if j, ok := byVar[v]; ok {
						parent[find(i)] = find(j)
					} else {
						byVar[v] = i
					}
				}
			}
			// Components that contain at least one row-producing element.
			compFirst := map[int]int{} // root -> index of first data node
			for i, n := range nodes {
				if n.display == "VALUES block" || n.display == "BIND" {
					continue
				}
				root := find(i)
				if _, ok := compFirst[root]; !ok {
					compFirst[root] = i
				}
			}
			if len(compFirst) < 2 {
				return
			}
			// Anchor the warning on the second component in element order.
			var firsts []int
			for _, i := range compFirst {
				firsts = append(firsts, i)
			}
			sort.Ints(firsts)
			second := nodes[firsts[1]]
			p.Reportf(second.pos, "group forms a cartesian product: %d disconnected components (%s shares no variable with %s); the result is their cross product",
				len(compFirst), second.display, nodes[firsts[0]].display)
		})
	},
}

func patternDisplay(tp sparql.TriplePattern) string {
	g := &sparql.GroupPattern{Elements: []sparql.Element{tp}}
	s := (&sparql.Query{Form: sparql.AskForm, Where: g, Limit: -1}).String()
	// Extract "pattern ." from "ASK WHERE { pattern . }".
	if i := strings.Index(s, "{ "); i >= 0 {
		s = strings.TrimSuffix(s[i+2:], " . }")
	}
	return s
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkFilterSat folds ground filter expressions with the engine's own
// evaluation semantics (eval.ConstEBV) and detects contradictory
// conjunctions over a single variable: equality to two distinct constants,
// equality contradicting a disequality, and empty numeric ranges.
var checkFilterSat = &Check{
	Name:     "filtersat",
	Severity: sparql.SevWarning,
	Doc: "constant-foldable or unsatisfiable FILTER: a ground expression that is\n" +
		"always true is dead weight (info); one that is always false or always errors\n" +
		"makes its group yield no rows (warning); a conjunction whose per-variable\n" +
		"constraints contradict (= to two constants, = against !=, an empty numeric\n" +
		"range) can never hold (warning).",
	Run: func(p *Pass) {
		forEachGroup(p.Query, func(g *sparql.GroupPattern, _ map[string]bool) {
			for _, el := range g.Elements {
				f, ok := el.(sparql.Filter)
				if !ok {
					continue
				}
				if v, err := eval.ConstEBV(f.Expr); err == nil {
					if v {
						p.ReportfSeverity(sparql.SevInfo, f.Pos, "filter is constant true: it removes no rows and can be deleted")
					} else {
						p.Reportf(f.Pos, "filter is constant false: its group yields no rows")
					}
					continue
				} else if !errors.Is(err, eval.ErrNonConst) {
					p.Reportf(f.Pos, "filter expression always errors (%v): its group yields no rows", err)
					continue
				}
				if msg := contradictionIn(f.Expr); msg != "" {
					p.Reportf(f.Pos, "filter conjunction is unsatisfiable: %s; its group yields no rows", msg)
				}
			}
		})
	},
}

// conjuncts splits an expression on top-level && into its conjuncts.
func conjuncts(x sparql.Expr) []sparql.Expr {
	if b, ok := x.(sparql.ExprBinary); ok && b.Op == "&&" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sparql.Expr{x}
}

// varConstraint is one conjunct of the form ?v OP constant.
type varConstraint struct {
	op   string
	term rdf.Term
}

// contradictionIn reports a human-readable contradiction between the
// per-variable constant constraints of the expression's conjunction, or ""
// when none is provable.
func contradictionIn(x sparql.Expr) string {
	perVar := map[string][]varConstraint{}
	for _, c := range conjuncts(x) {
		b, ok := c.(sparql.ExprBinary)
		if !ok {
			continue
		}
		v, okv := b.L.(sparql.ExprVar)
		rhs := b.R
		op := b.Op
		if !okv {
			// constant OP ?v — mirror to ?v OP' constant.
			v, okv = b.R.(sparql.ExprVar)
			rhs = b.L
			op = mirrorOp(b.Op)
			if !okv || op == "" {
				continue
			}
		}
		t, err := eval.ConstEval(rhs)
		if err != nil {
			continue
		}
		switch op {
		case "=", "!=", "<", "<=", ">", ">=":
			perVar[v.Name] = append(perVar[v.Name], varConstraint{op: op, term: t})
		}
	}

	vars := make([]string, 0, len(perVar))
	for v := range perVar {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		if msg := contradictionFor(v, perVar[v]); msg != "" {
			return msg
		}
	}
	return ""
}

func mirrorOp(op string) string {
	switch op {
	case "=", "!=":
		return op
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return ""
}

// contradictionFor checks one variable's constraints for pairwise
// contradictions: conflicting equalities, equality against disequality or
// an excluding range, and empty numeric ranges.
func contradictionFor(v string, cs []varConstraint) string {
	var eq *rdf.Term
	lo, hi := "", "" // rendered bounds for messages
	loVal, hiVal := 0.0, 0.0
	loInc, hiInc := false, false
	hasLo, hasHi := false, false

	render := func(t rdf.Term) string { return t.String() }
	for _, c := range cs {
		switch c.op {
		case "=":
			if eq != nil && !sameConstant(*eq, c.term) {
				return "?" + v + " = " + render(*eq) + " contradicts ?" + v + " = " + render(c.term)
			}
			t := c.term
			eq = &t
		case "!=":
			if eq != nil && sameConstant(*eq, c.term) {
				return "?" + v + " = " + render(c.term) + " contradicts ?" + v + " != " + render(c.term)
			}
		case "<", "<=", ">", ">=":
			f, ok := c.term.Numeric()
			if !ok {
				continue
			}
			inc := c.op == "<=" || c.op == ">="
			if c.op == "<" || c.op == "<=" {
				if !hasHi || f < hiVal || (f == hiVal && !inc) {
					hasHi, hiVal, hiInc, hi = true, f, inc, render(c.term)
				}
			} else {
				if !hasLo || f > loVal || (f == loVal && !inc) {
					hasLo, loVal, loInc, lo = true, f, inc, render(c.term)
				}
			}
		}
	}
	// Re-scan the deferred interactions now that eq and the range are known.
	for _, c := range cs {
		if c.op == "!=" && eq != nil && sameConstant(*eq, c.term) {
			return "?" + v + " = " + render(c.term) + " contradicts ?" + v + " != " + render(c.term)
		}
	}
	if eq != nil {
		if f, ok := eq.Numeric(); ok {
			if hasHi && (f > hiVal || (f == hiVal && !hiInc)) {
				return "?" + v + " = " + render(*eq) + " is outside the range bound < " + hi
			}
			if hasLo && (f < loVal || (f == loVal && !loInc)) {
				return "?" + v + " = " + render(*eq) + " is outside the range bound > " + lo
			}
		}
	}
	if hasLo && hasHi {
		if loVal > hiVal || (loVal == hiVal && (!loInc || !hiInc)) {
			return "?" + v + " > " + lo + " contradicts ?" + v + " < " + hi
		}
	}
	return ""
}

// sameConstant reports whether two constants are the same value for
// contradiction purposes: numeric comparison when both are numeric,
// otherwise term identity.
func sameConstant(a, b rdf.Term) bool {
	if fa, ok := a.Numeric(); ok {
		if fb, ok := b.Numeric(); ok {
			return fa == fb
		}
	}
	return a == b
}

// checkDupPattern notes triple patterns repeated verbatim in the same
// group: BGP matching is set-based, so the duplicate adds join work but no
// rows. The rewriter removes them; the diagnostic surfaces the redundancy
// to the query author.
var checkDupPattern = &Check{
	Name:     "duppattern",
	Severity: sparql.SevInfo,
	Doc: "a triple pattern is repeated verbatim in the same group. BGP matching is\n" +
		"set-based, so the duplicate contributes no additional rows — only join cost.\n" +
		"The safe-rewrite pass removes it automatically.",
	Run: func(p *Pass) {
		forEachGroup(p.Query, func(g *sparql.GroupPattern, _ map[string]bool) {
			seen := map[sparql.TriplePattern]bool{}
			for _, el := range g.Elements {
				tp, ok := el.(sparql.TriplePattern)
				if !ok {
					continue
				}
				key := tp
				key.Pos = 0
				if seen[key] {
					p.Reportf(tp.Pos, "duplicate triple pattern %s in the same group: set-based matching makes it a no-op", patternDisplay(tp))
				}
				seen[key] = true
			}
		})
	},
}

// checkOptWellDesigned flags non-well-designed OPTIONAL use: a variable of
// an OPTIONAL body that also occurs elsewhere in the query but not in the
// required part of the group the OPTIONAL extends. Such patterns make the
// result depend on evaluation order (Pérez et al.'s well-designed
// fragment is exactly the class where OPTIONAL is order-independent), and
// federated decomposition is free to pick an order the author did not
// anticipate.
var checkOptWellDesigned = &Check{
	Name:     "optwelldesigned",
	Severity: sparql.SevWarning,
	Doc: "non-well-designed OPTIONAL: a variable inside the OPTIONAL body also occurs\n" +
		"elsewhere in the query but not in the required part of the group the OPTIONAL\n" +
		"extends, so the result depends on evaluation order — and the federated\n" +
		"planner chooses that order, not the query text.",
	Run: func(p *Pass) {
		q := p.Query
		forEachGroup(q, func(g *sparql.GroupPattern, _ map[string]bool) {
			for i, el := range g.Elements {
				opt, ok := el.(sparql.Optional)
				if !ok {
					continue
				}
				optVars := map[string]bool{}
				possibleVars(opt.Group, optVars)
				// The part the OPTIONAL extends is what has accumulated
				// before it in the group — elements after it join onto the
				// left-join result, which is exactly where a shared variable
				// turns order-dependent.
				required := requiredVars(&sparql.GroupPattern{Elements: g.Elements[:i]})
				outside := map[string]bool{}
				collectVarsExcluding(q.Where, opt.Group, outside)
				var bad []string
				for v := range optVars {
					if outside[v] && !required[v] {
						bad = append(bad, v)
					}
				}
				sort.Strings(bad)
				for _, v := range bad {
					p.Reportf(opt.Pos, "non-well-designed OPTIONAL: ?%s is bound inside the OPTIONAL and elsewhere in the query, but not in the group the OPTIONAL extends; the result depends on join order", v)
				}
			}
		})
	},
}

// collectVarsExcluding gathers every variable the group tree can bind,
// skipping the excluded subtree (an OPTIONAL body under test).
func collectVarsExcluding(g, exclude *sparql.GroupPattern, into map[string]bool) {
	if g == nil || g == exclude {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case sparql.TriplePattern:
			for _, v := range e.Vars() {
				into[v] = true
			}
		case sparql.Optional:
			collectVarsExcluding(e.Group, exclude, into)
		case sparql.Union:
			for _, b := range e.Branches {
				collectVarsExcluding(b, exclude, into)
			}
		case sparql.SubSelect:
			for _, v := range e.Query.ProjectedVars() {
				into[v] = true
			}
		case sparql.InlineData:
			for _, v := range e.Vars {
				into[v] = true
			}
		case sparql.Bind:
			into[e.Var] = true
		}
	}
}
