package sema

import (
	"errors"
	"fmt"

	"lusail/internal/eval"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Rewrite returns a semantically equivalent copy of the query with the
// safe-rewrite suite applied, plus a note per rewrite performed. Every
// rewrite preserves the row multiset of Engine.Select exactly (the parity
// suite in internal/bench holds it to that on the LUBM workload):
//
//   - constfold: ground subexpressions are folded with the engine's own
//     evaluation semantics (eval.ConstEval); an erroring ground
//     subexpression is left untouched, because SPARQL's error propagation
//     is not the same as false propagation (e.g. !error ≠ !false).
//   - dead-FILTER elimination: a filter folded to constant true removes no
//     rows and is deleted.
//   - duplicate-pattern dedup: BGP matching is set-based, so a triple
//     pattern repeated verbatim in one group is a self-join that yields
//     the pattern itself.
//   - dead-OPTIONAL elimination: an OPTIONAL whose body contains a
//     constant-false filter never extends any row; left join with the
//     empty relation is the identity, so the OPTIONAL is deleted.
//   - dead-UNION-branch elimination: a branch with a constant-false filter
//     contributes no rows to the union and is deleted (unless it is the
//     last branch, whose emptiness is the group's semantics).
//   - filter pushdown: a filter whose variables are certainly bound by
//     every branch of a sibling UNION moves into the branches, so the
//     decomposer ships it to endpoints FedX-style. Filters distribute over
//     union, and join-then-filter equals filter-then-join when the filter
//     reads only branch-bound variables.
//
// The input query is not modified.
func Rewrite(q *sparql.Query) (*sparql.Query, []string) {
	out := cloneQuery(q)
	var notes []string
	// Iterate to a fixpoint: folding can expose dead optionals, dedup can
	// expose pushdown opportunities. The suite strictly shrinks or
	// preserves the AST, so four rounds is a safe ceiling.
	for round := 0; round < 4; round++ {
		n := len(notes)
		rewriteGroup(out.Where, &notes)
		if len(notes) == n {
			break
		}
	}
	return out, notes
}

func rewriteGroup(g *sparql.GroupPattern, notes *[]string) {
	if g == nil {
		return
	}
	// Recurse first so nested results feed the local decisions.
	for i, el := range g.Elements {
		switch e := el.(type) {
		case sparql.Filter:
			e.Expr = foldExpr(e.Expr, notes)
			g.Elements[i] = e
		case sparql.Optional:
			rewriteGroup(e.Group, notes)
		case sparql.Union:
			for _, b := range e.Branches {
				rewriteGroup(b, notes)
			}
		case sparql.SubSelect:
			rewriteGroup(e.Query.Where, notes)
		case sparql.Bind:
			e.Expr = foldExpr(e.Expr, notes)
			g.Elements[i] = e
		}
	}

	var kept []sparql.Element
	seen := map[sparql.TriplePattern]bool{}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case sparql.TriplePattern:
			key := e
			key.Pos = 0
			if seen[key] {
				*notes = append(*notes, fmt.Sprintf("dedup: removed duplicate pattern %s", patternDisplay(e)))
				continue
			}
			seen[key] = true
		case sparql.Filter:
			if v, err := eval.ConstEBV(e.Expr); err == nil && v {
				*notes = append(*notes, "deadfilter: removed constant-true FILTER")
				continue
			}
		case sparql.Optional:
			if groupAlwaysEmpty(e.Group) {
				*notes = append(*notes, "deadoptional: removed OPTIONAL whose body yields no rows")
				continue
			}
		case sparql.Union:
			var live []*sparql.GroupPattern
			for _, b := range e.Branches {
				if groupAlwaysEmpty(b) && len(e.Branches) > 1 {
					continue
				}
				live = append(live, b)
			}
			if len(live) == 0 {
				// Every branch is dead; keep one so the group still yields
				// no rows — deleting the union would change semantics.
				live = e.Branches[:1]
			}
			if len(live) < len(e.Branches) {
				*notes = append(*notes, fmt.Sprintf("deadunion: removed %d dead UNION branch(es)", len(e.Branches)-len(live)))
				e.Branches = live
				kept = append(kept, e)
				continue
			}
		}
		kept = append(kept, el)
	}
	g.Elements = kept

	pushFilters(g, notes)
}

// groupAlwaysEmpty reports whether the group provably yields no rows: it
// directly contains a filter that is constant false or always errors.
func groupAlwaysEmpty(g *sparql.GroupPattern) bool {
	for _, el := range g.Elements {
		f, ok := el.(sparql.Filter)
		if !ok {
			continue
		}
		if v, err := eval.ConstEBV(f.Expr); err == nil && !v {
			return true
		} else if err != nil && !errors.Is(err, eval.ErrNonConst) {
			return true
		}
	}
	return false
}

// pushFilters moves each filter of g whose variables are certainly bound
// by every branch of exactly one sibling UNION into those branches.
// Soundness: Filter(F, Join(R, Union(B1..Bn))) =
// Join(R, Union(Filter(F,B1)..Filter(F,Bn))) when vars(F) ⊆ certain(Bi)
// for all i — the filter's verdict for a joined row depends only on the
// branch-bound values, which the join preserves.
func pushFilters(g *sparql.GroupPattern, notes *[]string) {
	// Indexes of union elements and their certainly-bound variable sets.
	type unionInfo struct {
		idx     int
		certain map[string]bool
	}
	var unions []unionInfo
	for i, el := range g.Elements {
		if u, ok := el.(sparql.Union); ok {
			certain := certainUnionVars(u)
			unions = append(unions, unionInfo{idx: i, certain: certain})
		}
	}
	if len(unions) == 0 {
		return
	}
	var kept []sparql.Element
	for _, el := range g.Elements {
		f, ok := el.(sparql.Filter)
		if !ok {
			kept = append(kept, el)
			continue
		}
		vars := sparql.ExprVars(f.Expr)
		if len(vars) == 0 || hasExists(f.Expr) {
			kept = append(kept, el)
			continue
		}
		target := -1
		for _, u := range unions {
			all := true
			for _, v := range vars {
				if !u.certain[v] {
					all = false
					break
				}
			}
			if all {
				if target >= 0 {
					// More than one union certainly binds the filter's
					// variables; pushing into either alone is still sound
					// (the other's join re-checks nothing), but keep the
					// filter at group level for simplicity.
					target = -2
					break
				}
				target = u.idx
			}
		}
		if target < 0 {
			kept = append(kept, el)
			continue
		}
		u := g.Elements[target].(sparql.Union)
		for _, b := range u.Branches {
			b.Elements = append(b.Elements, sparql.Filter{Expr: cloneExpr(f.Expr)})
		}
		*notes = append(*notes, fmt.Sprintf("pushdown: moved FILTER on %v into %d UNION branch(es)", vars, len(u.Branches)))
	}
	g.Elements = kept
}

// certainUnionVars returns the variables every branch of the union
// certainly binds in each of its solutions.
func certainUnionVars(u sparql.Union) map[string]bool {
	var out map[string]bool
	for _, b := range u.Branches {
		c := certainGroupVars(b)
		if out == nil {
			out = c
			continue
		}
		for v := range out {
			if !c[v] {
				delete(out, v)
			}
		}
	}
	if out == nil {
		out = map[string]bool{}
	}
	return out
}

// certainGroupVars returns variables bound in every solution of the group:
// required triple patterns, VALUES with no UNDEF in the column, nested
// unions' certain vars, and sub-select projections that are certain below.
// OPTIONAL and BIND never bind certainly (BIND's expression can error).
func certainGroupVars(g *sparql.GroupPattern) map[string]bool {
	out := map[string]bool{}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case sparql.TriplePattern:
			for _, v := range e.Vars() {
				out[v] = true
			}
		case sparql.Union:
			for v := range certainUnionVars(e) {
				out[v] = true
			}
		case sparql.InlineData:
			for col, v := range e.Vars {
				allBound := len(e.Rows) > 0
				for _, row := range e.Rows {
					if col >= len(row) || row[col].IsZero() {
						allBound = false
						break
					}
				}
				if allBound {
					out[v] = true
				}
			}
		case sparql.SubSelect:
			sub := certainGroupVars(e.Query.Where)
			for _, p := range e.Query.Projection {
				if p.Agg != nil || sub[p.Var] {
					out[p.Var] = true
				}
			}
			if e.Query.Star {
				for v := range sub {
					out[v] = true
				}
			}
		}
	}
	return out
}

func hasExists(x sparql.Expr) bool {
	switch e := x.(type) {
	case sparql.ExprExists:
		return true
	case sparql.ExprBinary:
		return hasExists(e.L) || hasExists(e.R)
	case sparql.ExprUnary:
		return hasExists(e.X)
	case sparql.ExprCall:
		for _, a := range e.Args {
			if hasExists(a) {
				return true
			}
		}
	}
	return false
}

// foldExpr replaces ground subexpressions that evaluate successfully with
// their constant value. Erroring ground subexpressions are preserved:
// SPARQL's ternary error logic means an error operand is not
// interchangeable with false (!error is error, but !false is true).
func foldExpr(x sparql.Expr, notes *[]string) sparql.Expr {
	switch e := x.(type) {
	case sparql.ExprTerm, sparql.ExprVar:
		return x
	case sparql.ExprExists:
		return x
	case sparql.ExprUnary:
		e.X = foldExpr(e.X, notes)
		return tryFold(e, notes)
	case sparql.ExprBinary:
		e.L = foldExpr(e.L, notes)
		e.R = foldExpr(e.R, notes)
		return tryFold(e, notes)
	case sparql.ExprCall:
		for i := range e.Args {
			e.Args[i] = foldExpr(e.Args[i], notes)
		}
		return tryFold(e, notes)
	}
	return x
}

func tryFold(x sparql.Expr, notes *[]string) sparql.Expr {
	if _, isTerm := x.(sparql.ExprTerm); isTerm {
		return x
	}
	t, err := eval.ConstEval(x)
	if err != nil {
		return x
	}
	*notes = append(*notes, fmt.Sprintf("constfold: folded subexpression to %s", t))
	return sparql.ExprTerm{Term: t}
}

// cloneQuery deep-copies a query so rewrites never alias the caller's AST.
func cloneQuery(q *sparql.Query) *sparql.Query {
	if q == nil {
		return nil
	}
	out := *q
	if q.Prefixes != nil {
		out.Prefixes = make(map[string]string, len(q.Prefixes))
		for k, v := range q.Prefixes {
			out.Prefixes[k] = v
		}
	}
	out.Projection = append([]sparql.Projection(nil), q.Projection...)
	for i, p := range out.Projection {
		if p.Agg != nil {
			agg := *p.Agg
			out.Projection[i].Agg = &agg
		}
	}
	out.Template = append([]sparql.TriplePattern(nil), q.Template...)
	out.GroupBy = append([]string(nil), q.GroupBy...)
	out.OrderBy = append([]sparql.OrderCond(nil), q.OrderBy...)
	out.Where = cloneGroup(q.Where)
	return &out
}

func cloneGroup(g *sparql.GroupPattern) *sparql.GroupPattern {
	if g == nil {
		return nil
	}
	out := &sparql.GroupPattern{Pos: g.Pos}
	for _, el := range g.Elements {
		out.Elements = append(out.Elements, cloneElement(el))
	}
	return out
}

func cloneElement(el sparql.Element) sparql.Element {
	switch e := el.(type) {
	case sparql.TriplePattern:
		return e
	case sparql.Filter:
		e.Expr = cloneExpr(e.Expr)
		return e
	case sparql.Optional:
		e.Group = cloneGroup(e.Group)
		return e
	case sparql.Union:
		branches := make([]*sparql.GroupPattern, len(e.Branches))
		for i, b := range e.Branches {
			branches[i] = cloneGroup(b)
		}
		e.Branches = branches
		return e
	case sparql.SubSelect:
		e.Query = cloneQuery(e.Query)
		return e
	case sparql.InlineData:
		e.Vars = append([]string(nil), e.Vars...)
		rows := make([][]rdf.Term, len(e.Rows))
		for i, row := range e.Rows {
			rows[i] = append([]rdf.Term(nil), row...)
		}
		e.Rows = rows
		return e
	case sparql.Bind:
		e.Expr = cloneExpr(e.Expr)
		return e
	}
	return el
}

func cloneExpr(x sparql.Expr) sparql.Expr {
	switch e := x.(type) {
	case sparql.ExprBinary:
		e.L = cloneExpr(e.L)
		e.R = cloneExpr(e.R)
		return e
	case sparql.ExprUnary:
		e.X = cloneExpr(e.X)
		return e
	case sparql.ExprCall:
		args := make([]sparql.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = cloneExpr(a)
		}
		e.Args = args
		return e
	case sparql.ExprExists:
		e.Group = cloneGroup(e.Group)
		return e
	}
	return x
}
