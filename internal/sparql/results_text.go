package sparql

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"lusail/internal/rdf"
)

// WriteCSV writes the results in the SPARQL 1.1 Query Results CSV format:
// a header row of variable names, then one row per solution with plain
// lexical values (IRIs bare, literals unquoted by the csv writer rules).
// ASK results are written as a single boolean row.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if r.IsBoolean {
		if err := cw.Write([]string{"boolean"}); err != nil {
			return err
		}
		if err := cw.Write([]string{fmt.Sprintf("%v", r.Boolean)}); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	if err := cw.Write(r.Vars); err != nil {
		return err
	}
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, t := range row {
			cells[i] = csvValue(t)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvValue renders a term per the CSV results spec: the bare value, with
// blank nodes keeping their _: prefix.
func csvValue(t rdf.Term) string {
	if t.IsZero() {
		return ""
	}
	if t.Kind == rdf.Blank {
		return "_:" + t.Value
	}
	return t.Value
}

// WriteTSV writes the results in the SPARQL 1.1 Query Results TSV format:
// a header of ?-prefixed variables, then full N-Triples-style terms
// separated by tabs.
func (r *Results) WriteTSV(w io.Writer) error {
	if r.IsBoolean {
		_, err := fmt.Fprintf(w, "?boolean\n%v\n", r.Boolean)
		return err
	}
	header := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		header[i] = "?" + v
	}
	if _, err := io.WriteString(w, strings.Join(header, "\t")+"\n"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, t := range row {
			if !t.IsZero() {
				cells[i] = t.String()
			}
		}
		if _, err := io.WriteString(w, strings.Join(cells, "\t")+"\n"); err != nil {
			return err
		}
	}
	return nil
}
