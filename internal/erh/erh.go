// Package erh implements the Elastic Request Handler: a bounded worker pool
// that multiplexes endpoint requests (ASK source-selection probes, LADE
// check queries, COUNT cardinality probes, and SAPE subqueries) across a
// fixed number of workers, as in Figure 3 of the paper. The pool size
// defaults to the number of available CPU cores.
package erh

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"lusail/internal/obs"
)

// Pool is a bounded-concurrency executor. The zero value is not usable;
// call New.
type Pool struct {
	limit int

	queued   *obs.Gauge     // tasks submitted, waiting for a slot
	inFlight *obs.Gauge     // tasks holding a slot
	wait     *obs.Histogram // time from submission to slot acquisition
}

// New returns a pool running at most limit tasks concurrently. If limit
// is <= 0 the pool sizes itself to the number of CPU cores, matching the
// paper's "number of available threads is determined by the number of
// physical cores". Pools report queue depth, in-flight tasks, and task
// wait time into the default obs registry (all pools share the series, so
// the gauges read as process-wide totals).
func New(limit int) *Pool {
	if limit <= 0 {
		limit = runtime.NumCPU()
	}
	reg := obs.Default()
	return &Pool{
		limit:    limit,
		queued:   reg.Gauge(obs.MetricERHQueueDepth, "tasks waiting for an ERH pool slot"),
		inFlight: reg.Gauge(obs.MetricERHInFlight, "tasks holding an ERH pool slot"),
		wait:     reg.Histogram(obs.MetricERHWaitSeconds, "time tasks wait for an ERH pool slot", obs.LatencyBuckets),
	}
}

// Limit returns the pool's concurrency limit.
func (p *Pool) Limit() int { return p.limit }

// Gate decides, per named endpoint, whether a task is worth dispatching
// right now. The resilience layer's breaker view (Manager.Gate) implements
// it: an open breaker rejects the task before it occupies a pool slot, so
// a broken endpoint cannot starve the pool while its requests wait out
// timeouts.
//
// Allow must be advisory — peek, don't claim. Tasks are gated at
// submission, possibly long before a worker slot frees up, so a gate that
// claimed limited admission state here (e.g. a breaker's half-open trial
// slot) would hold it for the whole queue wait and could leak it entirely
// when the task is skipped by cancellation. The authoritative, claiming
// admission happens again inside the task when the request dispatches
// (resilience.Manager.Do / DoHedged).
type Gate interface {
	// Allow returns nil to admit a task for the named endpoint, or the
	// rejection cause (wrapping resilience.ErrBreakerOpen for breakers).
	Allow(name string) error
}

// ForEach runs fn(0..n-1) with bounded concurrency and waits for all calls
// to finish. It returns the joined errors of all failed calls. If the
// context is cancelled, unstarted tasks are skipped — including tasks that
// were already queued on the semaphore when the cancellation arrived — and
// ctx.Err() is included in the returned error.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return p.forEach(ctx, n, nil, nil, nil, fn)
}

// ForEachGated is ForEach with per-task admission control: before task i
// waits for a pool slot, gate.Allow(names[i]) is consulted. A rejected
// task never occupies a slot; its rejection is passed to onReject(i, err)
// when set (partial-results mode records a warning and moves on), or
// recorded as the task's error when onReject is nil (fail-fast mode). A
// nil gate admits everything, making the call equivalent to ForEach over
// len(names) tasks.
func (p *Pool) ForEachGated(ctx context.Context, names []string, gate Gate, onReject func(i int, err error), fn func(i int) error) error {
	return p.forEach(ctx, len(names), names, gate, onReject, fn)
}

func (p *Pool) forEach(ctx context.Context, n int, names []string, gate Gate, onReject func(i int, err error), fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	sem := make(chan struct{}, p.limit)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			break
		}
		if gate != nil && i < len(names) {
			if err := gate.Allow(names[i]); err != nil {
				if onReject != nil {
					onReject(i, err)
				} else {
					errs[i] = err
				}
				continue
			}
		}
		p.queued.Add(1)
		waitStart := time.Now()
		sem <- struct{}{}
		p.queued.Add(-1)
		p.wait.Observe(time.Since(waitStart).Seconds())
		// Re-check after the (possibly long) wait for a slot: a cancelled
		// context must stop queued tasks from launching, not only break
		// the submission loop before the wait.
		if err := ctx.Err(); err != nil {
			<-sem
			errs[i] = err
			break
		}
		p.inFlight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.inFlight.Add(-1)
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Map runs fn over 0..n-1 with bounded concurrency and collects the
// results, preserving order. The first error cancels nothing but is
// reported (joined with any others).
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
