package erh

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lusail/internal/lint/leakcheck"
)

func TestForEachRunsAll(t *testing.T) {
	p := New(4)
	var n atomic.Int64
	err := p.ForEach(context.Background(), 100, func(i int) error {
		n.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	p := New(3)
	var cur, peak atomic.Int64
	err := p.ForEach(context.Background(), 30, func(i int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds limit 3", peak.Load())
	}
}

func TestForEachCollectsErrors(t *testing.T) {
	p := New(2)
	sentinel := errors.New("boom")
	err := p.ForEach(context.Background(), 10, func(i int) error {
		if i%3 == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestForEachContextCancel(t *testing.T) {
	leakcheck.Check(t)
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForEach(ctx, 50, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 50 {
		t.Error("cancellation should skip remaining tasks")
	}
}

func TestForEachZero(t *testing.T) {
	if err := New(2).ForEach(context.Background(), 0, func(int) error { return errors.New("x") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
}

func TestDefaultLimit(t *testing.T) {
	if New(0).Limit() <= 0 {
		t.Error("default limit should be positive")
	}
	if New(-5).Limit() <= 0 {
		t.Error("negative limit should default")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	p := New(8)
	out, err := Map(context.Background(), p, 20, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	p := New(2)
	sentinel := errors.New("bad")
	_, err := Map(context.Background(), p, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

// denyGate rejects the named endpoints.
type denyGate map[string]bool

func (g denyGate) Allow(name string) error {
	if g[name] {
		return errors.New("gate: " + name + " rejected")
	}
	return nil
}

func TestForEachGatedFailFast(t *testing.T) {
	p := New(4)
	names := []string{"u0", "u1", "u2", "u3"}
	var ran atomic.Int64
	err := p.ForEachGated(context.Background(), names, denyGate{"u2": true}, nil, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err == nil || err.Error() != "gate: u2 rejected" {
		t.Fatalf("ForEachGated with nil onReject = %v, want the gate's rejection", err)
	}
	if ran.Load() != 3 {
		t.Errorf("ran %d tasks, want 3 (the admitted ones)", ran.Load())
	}
}

func TestForEachGatedOnReject(t *testing.T) {
	p := New(4)
	names := []string{"u0", "u1", "u2", "u3"}
	var ran atomic.Int64
	var rejected []int
	err := p.ForEachGated(context.Background(), names, denyGate{"u1": true, "u3": true},
		func(i int, err error) { rejected = append(rejected, i) },
		func(i int) error {
			if names[i] == "u1" || names[i] == "u3" {
				t.Errorf("rejected task %d ran anyway", i)
			}
			ran.Add(1)
			return nil
		})
	if err != nil {
		t.Fatalf("ForEachGated with onReject: %v", err)
	}
	if ran.Load() != 2 {
		t.Errorf("ran %d tasks, want 2", ran.Load())
	}
	if len(rejected) != 2 {
		t.Errorf("onReject saw %v, want indexes of u1 and u3", rejected)
	}
}

func TestForEachGatedNilGate(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	err := p.ForEachGated(context.Background(), []string{"a", "b"}, nil, nil, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil || ran.Load() != 2 {
		t.Fatalf("nil gate: err=%v ran=%d, want nil and 2", err, ran.Load())
	}
}
