package erh

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	p := New(4)
	var n atomic.Int64
	err := p.ForEach(context.Background(), 100, func(i int) error {
		n.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	p := New(3)
	var cur, peak atomic.Int64
	err := p.ForEach(context.Background(), 30, func(i int) error {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds limit 3", peak.Load())
	}
}

func TestForEachCollectsErrors(t *testing.T) {
	p := New(2)
	sentinel := errors.New("boom")
	err := p.ForEach(context.Background(), 10, func(i int) error {
		if i%3 == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestForEachContextCancel(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForEach(ctx, 50, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 50 {
		t.Error("cancellation should skip remaining tasks")
	}
}

func TestForEachZero(t *testing.T) {
	if err := New(2).ForEach(context.Background(), 0, func(int) error { return errors.New("x") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
}

func TestDefaultLimit(t *testing.T) {
	if New(0).Limit() <= 0 {
		t.Error("default limit should be positive")
	}
	if New(-5).Limit() <= 0 {
		t.Error("negative limit should default")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	p := New(8)
	out, err := Map(context.Background(), p, 20, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	p := New(2)
	sentinel := errors.New("bad")
	_, err := Map(context.Background(), p, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}
