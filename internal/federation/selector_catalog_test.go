package federation

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/sparql"
)

// fakeTier is a scripted CatalogTier: decisions are keyed by endpoint name.
type fakeTier struct {
	mu        sync.Mutex
	decisions map[string]TierDecision
	calls     int
}

func (f *fakeTier) Decide(tp sparql.TriplePattern, endpoint string) TierDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return f.decisions[endpoint]
}

// failingEndpoint errors on every query, standing in for an unreachable
// remote endpoint.
type failingEndpoint struct{ name string }

func (e *failingEndpoint) Name() string { return e.name }
func (e *failingEndpoint) Query(ctx context.Context, query string) (*sparql.Results, error) {
	return nil, fmt.Errorf("endpoint %s: connection refused", e.name)
}

func instrumented(f *Federation, m *client.Metrics) *Federation {
	var eps []client.Endpoint
	for _, ep := range f.Endpoints() {
		eps = append(eps, client.NewInstrumented(ep, m))
	}
	return MustNew(eps...)
}

func TestCatalogTierFullHit(t *testing.T) {
	var m client.Metrics
	fed := instrumented(twoEndpointFed(), &m)
	sel := NewSourceSelector(fed, erh.New(4))
	sel.SetCatalog(&fakeTier{decisions: map[string]TierDecision{
		"ep1": TierIrrelevant,
		"ep2": TierRelevant,
	}})

	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")}
	got, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ep2"}) {
		t.Errorf("sources = %v, want [ep2]", got)
	}
	if n := m.Snapshot().Requests; n != 0 {
		t.Errorf("catalog full hit issued %d requests, want 0", n)
	}
}

func TestCatalogTierPartial(t *testing.T) {
	var m client.Metrics
	fed := instrumented(twoEndpointFed(), &m)
	sel := NewSourceSelector(fed, erh.New(4))
	// ep1 is undecided and must be ASK-probed; ep2 is answered by the
	// catalog without traffic.
	sel.SetCatalog(&fakeTier{decisions: map[string]TierDecision{
		"ep1": TierUnknown,
		"ep2": TierRelevant,
	}})

	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	got, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ep1", "ep2"}) {
		t.Errorf("sources = %v, want [ep1 ep2]", got)
	}
	if n := m.Snapshot().Asks; n != 1 {
		t.Errorf("partial hit issued %d ASKs, want 1 (only the undecided endpoint)", n)
	}
}

func TestCatalogOverApproximationIsHarmless(t *testing.T) {
	// The catalog claims both endpoints are relevant for a predicate only
	// ep2 holds: the source list over-approximates but stays a superset of
	// the true one, which the engine tolerates by construction.
	var m client.Metrics
	fed := instrumented(twoEndpointFed(), &m)
	sel := NewSourceSelector(fed, erh.New(4))
	sel.SetCatalog(&fakeTier{decisions: map[string]TierDecision{
		"ep1": TierRelevant,
		"ep2": TierRelevant,
	}})
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")}
	got, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ep1", "ep2"}) {
		t.Errorf("sources = %v", got)
	}
	if n := m.Snapshot().Requests; n != 0 {
		t.Errorf("issued %d requests, want 0", n)
	}
}

func TestCatalogResultsAreCached(t *testing.T) {
	fed := twoEndpointFed()
	sel := NewSourceSelector(fed, erh.New(4))
	tier := &fakeTier{decisions: map[string]TierDecision{
		"ep1": TierRelevant,
		"ep2": TierIrrelevant,
	}}
	sel.SetCatalog(tier)
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	if _, err := sel.RelevantSources(context.Background(), tp); err != nil {
		t.Fatal(err)
	}
	first := tier.calls
	if _, err := sel.RelevantSources(context.Background(), tp); err != nil {
		t.Fatal(err)
	}
	if tier.calls != first {
		t.Errorf("second lookup consulted the catalog (%d -> %d calls), want cache hit", first, tier.calls)
	}
}

func TestProbeFailureDegrades(t *testing.T) {
	// One endpoint down: it is conservatively kept as a source and the
	// query proceeds instead of aborting.
	good := twoEndpointFed()
	fed := MustNew(good.Get("ep1"), good.Get("ep2"), &failingEndpoint{name: "down"})
	sel := NewSourceSelector(fed, erh.New(4))

	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")}
	got, err := sel.RelevantSources(context.Background(), tp)
	if err != nil {
		t.Fatalf("single probe failure aborted the query: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"ep2", "down"}) {
		t.Errorf("sources = %v, want [ep2 down] (failed endpoint kept conservatively)", got)
	}
}

func TestAllProbesFailing(t *testing.T) {
	fed := MustNew(&failingEndpoint{name: "a"}, &failingEndpoint{name: "b"})
	sel := NewSourceSelector(fed, erh.New(4))
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	if _, err := sel.RelevantSources(context.Background(), tp); err == nil {
		t.Fatal("all probes failing should abort, not degrade")
	}
}

func TestProbeCancellationAborts(t *testing.T) {
	fed := twoEndpointFed()
	sel := NewSourceSelector(fed, erh.New(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	_, err := sel.RelevantSources(ctx, tp)
	if err == nil {
		t.Fatal("cancelled selection should error, not return a partial source list")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSelectorCatalogRace exercises concurrent source selection against a
// shared cache and catalog tier while the catalog is being swapped; run
// with -race.
func TestSelectorCatalogRace(t *testing.T) {
	fed := twoEndpointFed()
	sel := NewSourceSelector(fed, erh.New(8))
	tier := &fakeTier{decisions: map[string]TierDecision{
		"ep1": TierRelevant,
		"ep2": TierUnknown,
	}}
	patterns := []sparql.TriplePattern{
		{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")},
		{S: sparql.Var("s"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")},
		{S: sparql.IRI("http://ex/c"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					sel.SetCatalog(tier)
				case 1:
					sel.SetCatalog(nil)
				}
				if _, err := sel.RelevantSources(context.Background(), patterns[(w+i)%len(patterns)]); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					sel.ClearCache()
				}
			}
		}(w)
	}
	wg.Wait()
}
