// Package federation models a set of independent SPARQL endpoints and
// implements the machinery shared by all federated engines in this
// repository: the endpoint registry, ASK-based source selection with
// caching, and per-query request accounting.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/obs"
	"lusail/internal/resilience"
	"lusail/internal/sparql"
)

// Federation is an ordered registry of endpoints.
type Federation struct {
	eps    []client.Endpoint
	byName map[string]client.Endpoint
	epoch  uint64
}

// fedEpochs hands each federation a process-unique epoch at construction.
// A federation is immutable after New, so its identity doubles as its
// planning epoch: two equal epochs imply the same endpoint set.
var fedEpochs atomic.Uint64

// New returns a federation over the given endpoints. Endpoint names must be
// unique.
func New(eps ...client.Endpoint) (*Federation, error) {
	f := &Federation{
		byName: make(map[string]client.Endpoint, len(eps)),
		epoch:  fedEpochs.Add(1),
	}
	for _, ep := range eps {
		if _, dup := f.byName[ep.Name()]; dup {
			return nil, fmt.Errorf("federation: duplicate endpoint name %q", ep.Name())
		}
		f.byName[ep.Name()] = ep
		f.eps = append(f.eps, ep)
	}
	return f, nil
}

// Epoch returns the federation's process-unique construction epoch. Plans
// and caches keyed on it are invalidated by swapping in a new federation.
func (f *Federation) Epoch() uint64 { return f.epoch }

// MustNew is New but panics on error; for tests and generators that
// construct names programmatically.
func MustNew(eps ...client.Endpoint) *Federation {
	f, err := New(eps...)
	if err != nil {
		panic(err)
	}
	return f
}

// Endpoints returns the endpoints in registration order.
func (f *Federation) Endpoints() []client.Endpoint { return f.eps }

// Names returns the endpoint names in registration order.
func (f *Federation) Names() []string {
	out := make([]string, len(f.eps))
	for i, ep := range f.eps {
		out[i] = ep.Name()
	}
	return out
}

// Get returns the endpoint with the given name, or nil.
func (f *Federation) Get(name string) client.Endpoint { return f.byName[name] }

// Size returns the number of endpoints.
func (f *Federation) Size() int { return len(f.eps) }

// TierDecision classifies one endpoint for one triple pattern, as answered
// by the probe-free catalog tier of source selection.
type TierDecision int

const (
	// TierUnknown means the catalog cannot decide (missing, stale, or
	// partial summary); the endpoint must be ASK-probed.
	TierUnknown TierDecision = iota
	// TierRelevant means the endpoint may hold matches of the pattern and
	// must be included. The catalog may over-approximate here (e.g. an
	// authority sketch cannot distinguish two entities of one authority);
	// including a non-matching endpoint costs work but never correctness.
	TierRelevant
	// TierIrrelevant means the endpoint provably holds no match of the
	// pattern (e.g. the predicate does not occur there) and is pruned
	// without a probe.
	TierIrrelevant
)

// String returns the span-attribute label of the decision.
func (d TierDecision) String() string {
	switch d {
	case TierRelevant:
		return "relevant"
	case TierIrrelevant:
		return "irrelevant"
	}
	return "unknown"
}

// CatalogTier answers source-selection questions from precomputed data
// summaries so that ASK probes are only issued for endpoints the summaries
// cannot decide. Implemented by *catalog.Store.
type CatalogTier interface {
	// Decide classifies the endpoint for the pattern. It must be safe for
	// concurrent use and must return TierUnknown rather than guess when its
	// information is stale or incomplete.
	Decide(tp sparql.TriplePattern, endpoint string) TierDecision
}

// SourceSelector performs per-triple-pattern source selection with a
// two-tier strategy: a probe-free catalog tier (when configured with
// SetCatalog) answers from precomputed data summaries, and SPARQL ASK
// probes settle whatever the catalog cannot decide. Results are cached by
// the normalized pattern (like Lusail and FedX, which both cache ASK
// results).
type SourceSelector struct {
	fed  *Federation
	pool *erh.Pool

	mu          sync.Mutex
	cache       map[string][]string // normalized pattern -> relevant endpoint names
	catalog     CatalogTier
	catalogOnly bool
	res         *resilience.Manager

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	catalogHits      *obs.Counter
	catalogPartial   *obs.Counter
	catalogFallbacks *obs.Counter
	probeFailures    *obs.Counter
}

// NewSourceSelector returns a selector over the federation using the pool
// for concurrent ASK probes. Cache hits and misses are reported into the
// default obs registry.
func NewSourceSelector(fed *Federation, pool *erh.Pool) *SourceSelector {
	reg := obs.Default()
	return &SourceSelector{
		fed:              fed,
		pool:             pool,
		cache:            map[string][]string{},
		cacheHits:        reg.Counter(obs.MetricSourceCacheHits, "source-selection ASK cache hits"),
		cacheMisses:      reg.Counter(obs.MetricSourceCacheMisses, "source-selection ASK cache misses"),
		catalogHits:      reg.Counter(obs.MetricCatalogSourceHits, "patterns source-selected entirely from the catalog"),
		catalogPartial:   reg.Counter(obs.MetricCatalogSourcePartial, "patterns where the catalog decided some endpoints and ASK probes the rest"),
		catalogFallbacks: reg.Counter(obs.MetricCatalogSourceFallbacks, "patterns where the catalog decided nothing and all endpoints were ASK-probed"),
		probeFailures:    reg.Counter(obs.MetricSourceProbeFailures, "ASK probes that failed and were conservatively treated as relevant"),
	}
}

// SetCatalog installs (or, with nil, removes) the probe-free catalog tier
// consulted before ASK probes.
func (s *SourceSelector) SetCatalog(c CatalogTier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catalog = c
}

// SetCatalogOnly forbids ASK probes: endpoints the catalog cannot decide
// are conservatively treated as relevant instead of being probed. Sound
// (over-approximate) but never issues planning traffic.
func (s *SourceSelector) SetCatalogOnly(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catalogOnly = on
}

// SetResilience installs (or, with nil, removes) the resilience manager
// through which ASK probes are issued: probes gain circuit-breaker gating
// and tail hedging. A nil manager is the disabled state.
func (s *SourceSelector) SetResilience(m *resilience.Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res = m
}

// ClearCache drops all cached source-selection results.
func (s *SourceSelector) ClearCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = map[string][]string{}
}

// CacheLen returns the number of cached patterns (for tests and profiling).
func (s *SourceSelector) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// RelevantSources returns the names of the endpoints that may have at least
// one triple matching the pattern, in federation order.
//
// With a catalog tier installed, summaries answer first: endpoints the
// catalog proves irrelevant are pruned without traffic, endpoints it proves
// (possibly over-approximately) relevant are included, and only undecided
// endpoints are ASK-probed. Without a catalog — or for undecided endpoints
// — a failed ASK probe degrades gracefully: the endpoint is conservatively
// treated as relevant and a warning counter is incremented; the query is
// aborted only when every issued probe fails.
func (s *SourceSelector) RelevantSources(ctx context.Context, tp sparql.TriplePattern) ([]string, error) {
	key := NormalizePattern(tp)
	sp := obs.FromContext(ctx).StartChild("select-sources")
	defer sp.End()
	sp.SetAttr("pattern", key)

	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		s.mu.Unlock()
		s.cacheHits.Inc()
		sp.SetAttr("cache", "hit")
		sp.SetAttr("sources", strings.Join(cached, ","))
		return cached, nil
	}
	catalog := s.catalog
	catalogOnly := s.catalogOnly
	res := s.res
	s.mu.Unlock()
	s.cacheMisses.Inc()
	sp.SetAttr("cache", "miss")

	eps := s.fed.Endpoints()
	relevant := make([]bool, len(eps))
	probe := make([]bool, len(eps)) // endpoints the catalog could not decide
	nProbe := 0
	if catalog != nil {
		for i, ep := range eps {
			switch catalog.Decide(tp, ep.Name()) {
			case TierRelevant:
				relevant[i] = true
			case TierUnknown:
				probe[i] = true
				nProbe++
			}
		}
		switch {
		case nProbe == 0:
			s.catalogHits.Inc()
			sp.SetAttr("tier", "catalog")
		case nProbe == len(eps):
			s.catalogFallbacks.Inc()
			sp.SetAttr("tier", "ask")
		default:
			s.catalogPartial.Inc()
			sp.SetAttr("tier", "catalog+ask")
		}
	} else {
		for i := range eps {
			probe[i] = true
		}
		nProbe = len(eps)
		sp.SetAttr("tier", "ask")
	}

	if nProbe > 0 && catalogOnly {
		// Probe-free planning: undecided endpoints are conservatively kept
		// as candidate sources. Over-approximate but sound — an irrelevant
		// endpoint contributes empty subquery results, never wrong ones.
		for i, p := range probe {
			if p {
				relevant[i] = true
			}
		}
		nProbe = 0
		sp.SetAttr("tier", "catalog-only")
	}

	if nProbe > 0 {
		ask := askQuery(tp)
		var toProbe []int
		var probeNames []string
		for i, p := range probe {
			if p {
				toProbe = append(toProbe, i)
				probeNames = append(probeNames, eps[i].Name())
			}
		}
		probeErrs := make([]error, len(toProbe))
		degradeToRelevant := func(k int, err error) {
			i := toProbe[k]
			probeErrs[k] = &client.EndpointError{
				Endpoint: eps[i].Name(), Phase: client.PhaseSourceSelection, Err: err}
			s.probeFailures.Inc()
			relevant[i] = true
			resilience.Warn(ctx, resilience.Warning{
				Endpoint: eps[i].Name(),
				Phase:    client.PhaseSourceSelection,
				Message:  "probe failed; endpoint conservatively treated as relevant: " + err.Error(),
			})
		}
		ferr := s.pool.ForEachGated(ctx, probeNames, res.Gate(), degradeToRelevant, func(k int) error {
			i := toProbe[k]
			asp := sp.StartChild("ask")
			defer asp.End()
			asp.SetAttr("endpoint", eps[i].Name())
			r, err := res.DoHedged(ctx, eps[i], ask)
			var ok bool
			if err == nil {
				ok, err = client.Boolean(r, eps[i].Name())
			}
			if err != nil {
				// Degrade: a single unreachable endpoint must not abort the
				// whole query. Conservatively keep it as a candidate source
				// (its subqueries may still fail later, but transient probe
				// errors no longer kill cheap queries).
				degradeToRelevant(k, err)
				asp.SetAttr("error", err.Error())
				asp.SetAttr("relevant", true)
				return nil
			}
			asp.SetAttr("relevant", ok)
			relevant[i] = ok
			return nil
		})
		if ferr != nil {
			// The worker callback never returns an error, so ferr can only
			// carry context cancellation for probes that were skipped before
			// they ran. Those endpoints have no answer at all — treating them
			// as irrelevant would silently drop sources — so abort with the
			// cancellation instead.
			return nil, ferr
		}
		var errs []error
		for _, e := range probeErrs {
			if e != nil {
				errs = append(errs, e)
			}
		}
		if len(errs) == len(toProbe) {
			// Every probe failed (endpoints down, or the context cancelled):
			// there is no information to degrade onto.
			return nil, errors.Join(errs...)
		}
	}

	var names []string
	for i, ok := range relevant {
		if ok {
			names = append(names, eps[i].Name())
		}
	}
	sp.SetAttr("sources", strings.Join(names, ","))
	s.mu.Lock()
	s.cache[key] = names
	s.mu.Unlock()
	return names, nil
}

// askQuery builds the ASK probe for one triple pattern.
func askQuery(tp sparql.TriplePattern) string {
	q := sparql.NewAsk()
	q.Where.Elements = append(q.Where.Elements, tp)
	return q.String()
}

// NormalizePattern renders a pattern with canonicalized variable names so
// that structurally identical patterns share one cache entry, while
// patterns that repeat a variable keep their self-join structure.
func NormalizePattern(tp sparql.TriplePattern) string {
	names := map[string]string{}
	canon := func(pt sparql.PatternTerm) string {
		if !pt.IsVar() {
			return pt.Term.String()
		}
		if n, ok := names[pt.Var]; ok {
			return n
		}
		n := fmt.Sprintf("?v%d", len(names))
		names[pt.Var] = n
		return n
	}
	return canon(tp.S) + " " + canon(tp.P) + " " + canon(tp.O)
}

// SameSources reports whether two sorted-or-unsorted source lists contain
// the same endpoint names.
func SameSources(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// IntersectSources returns the names present in both lists, preserving the
// order of a.
func IntersectSources(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, n := range b {
		set[n] = true
	}
	var out []string
	for _, n := range a {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// SourcesKey returns a canonical string for a set of sources.
func SourcesKey(names []string) string {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return strings.Join(s, ",")
}
