// Package federation models a set of independent SPARQL endpoints and
// implements the machinery shared by all federated engines in this
// repository: the endpoint registry, ASK-based source selection with
// caching, and per-query request accounting.
package federation

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/obs"
	"lusail/internal/sparql"
)

// Federation is an ordered registry of endpoints.
type Federation struct {
	eps    []client.Endpoint
	byName map[string]client.Endpoint
}

// New returns a federation over the given endpoints. Endpoint names must be
// unique.
func New(eps ...client.Endpoint) (*Federation, error) {
	f := &Federation{byName: make(map[string]client.Endpoint, len(eps))}
	for _, ep := range eps {
		if _, dup := f.byName[ep.Name()]; dup {
			return nil, fmt.Errorf("federation: duplicate endpoint name %q", ep.Name())
		}
		f.byName[ep.Name()] = ep
		f.eps = append(f.eps, ep)
	}
	return f, nil
}

// MustNew is New but panics on error; for tests and generators that
// construct names programmatically.
func MustNew(eps ...client.Endpoint) *Federation {
	f, err := New(eps...)
	if err != nil {
		panic(err)
	}
	return f
}

// Endpoints returns the endpoints in registration order.
func (f *Federation) Endpoints() []client.Endpoint { return f.eps }

// Names returns the endpoint names in registration order.
func (f *Federation) Names() []string {
	out := make([]string, len(f.eps))
	for i, ep := range f.eps {
		out[i] = ep.Name()
	}
	return out
}

// Get returns the endpoint with the given name, or nil.
func (f *Federation) Get(name string) client.Endpoint { return f.byName[name] }

// Size returns the number of endpoints.
func (f *Federation) Size() int { return len(f.eps) }

// SourceSelector performs per-triple-pattern source selection using SPARQL
// ASK probes, with a cache keyed by the normalized pattern (like Lusail and
// FedX, which both cache ASK results).
type SourceSelector struct {
	fed  *Federation
	pool *erh.Pool

	mu    sync.Mutex
	cache map[string][]string // normalized pattern -> relevant endpoint names

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

// NewSourceSelector returns a selector over the federation using the pool
// for concurrent ASK probes. Cache hits and misses are reported into the
// default obs registry.
func NewSourceSelector(fed *Federation, pool *erh.Pool) *SourceSelector {
	reg := obs.Default()
	return &SourceSelector{
		fed:         fed,
		pool:        pool,
		cache:       map[string][]string{},
		cacheHits:   reg.Counter(obs.MetricSourceCacheHits, "source-selection ASK cache hits"),
		cacheMisses: reg.Counter(obs.MetricSourceCacheMisses, "source-selection ASK cache misses"),
	}
}

// ClearCache drops all cached source-selection results.
func (s *SourceSelector) ClearCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = map[string][]string{}
}

// CacheLen returns the number of cached patterns (for tests and profiling).
func (s *SourceSelector) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// RelevantSources returns the names of the endpoints that have at least one
// triple matching the pattern, in federation order.
func (s *SourceSelector) RelevantSources(ctx context.Context, tp sparql.TriplePattern) ([]string, error) {
	key := NormalizePattern(tp)
	sp := obs.FromContext(ctx).StartChild("select-sources")
	defer sp.End()
	sp.SetAttr("pattern", key)

	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		s.mu.Unlock()
		s.cacheHits.Inc()
		sp.SetAttr("cache", "hit")
		sp.SetAttr("sources", strings.Join(cached, ","))
		return cached, nil
	}
	s.mu.Unlock()
	s.cacheMisses.Inc()
	sp.SetAttr("cache", "miss")

	ask := askQuery(tp)
	eps := s.fed.Endpoints()
	relevant := make([]bool, len(eps))
	err := s.pool.ForEach(ctx, len(eps), func(i int) error {
		asp := sp.StartChild("ask")
		defer asp.End()
		asp.SetAttr("endpoint", eps[i].Name())
		ok, err := client.Ask(ctx, eps[i], ask)
		if err != nil {
			return fmt.Errorf("source selection at %s: %w", eps[i].Name(), err)
		}
		asp.SetAttr("relevant", ok)
		relevant[i] = ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	var names []string
	for i, ok := range relevant {
		if ok {
			names = append(names, eps[i].Name())
		}
	}
	sp.SetAttr("sources", strings.Join(names, ","))
	s.mu.Lock()
	s.cache[key] = names
	s.mu.Unlock()
	return names, nil
}

// askQuery builds the ASK probe for one triple pattern.
func askQuery(tp sparql.TriplePattern) string {
	q := sparql.NewAsk()
	q.Where.Elements = append(q.Where.Elements, tp)
	return q.String()
}

// NormalizePattern renders a pattern with canonicalized variable names so
// that structurally identical patterns share one cache entry, while
// patterns that repeat a variable keep their self-join structure.
func NormalizePattern(tp sparql.TriplePattern) string {
	names := map[string]string{}
	canon := func(pt sparql.PatternTerm) string {
		if !pt.IsVar() {
			return pt.Term.String()
		}
		if n, ok := names[pt.Var]; ok {
			return n
		}
		n := fmt.Sprintf("?v%d", len(names))
		names[pt.Var] = n
		return n
	}
	return canon(tp.S) + " " + canon(tp.P) + " " + canon(tp.O)
}

// SameSources reports whether two sorted-or-unsorted source lists contain
// the same endpoint names.
func SameSources(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// IntersectSources returns the names present in both lists, preserving the
// order of a.
func IntersectSources(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, n := range b {
		set[n] = true
	}
	var out []string
	for _, n := range a {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// SourcesKey returns a canonical string for a set of sources.
func SourcesKey(names []string) string {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return strings.Join(s, ",")
}
