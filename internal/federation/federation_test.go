package federation

import (
	"context"
	"reflect"
	"testing"

	"lusail/internal/client"
	"lusail/internal/erh"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

// twoEndpointFed builds EP1 with predicate p, EP2 with predicates p and q.
func twoEndpointFed() *Federation {
	ep1 := client.NewInProcess("ep1", store.NewFromTriples([]rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
	}))
	ep2 := client.NewInProcess("ep2", store.NewFromTriples([]rdf.Triple{
		{S: iri("c"), P: iri("p"), O: iri("d")},
		{S: iri("c"), P: iri("q"), O: iri("e")},
	}))
	return MustNew(ep1, ep2)
}

func TestFederationRegistry(t *testing.T) {
	f := twoEndpointFed()
	if f.Size() != 2 {
		t.Errorf("Size = %d", f.Size())
	}
	if got := f.Names(); !reflect.DeepEqual(got, []string{"ep1", "ep2"}) {
		t.Errorf("Names = %v", got)
	}
	if f.Get("ep2") == nil || f.Get("nope") != nil {
		t.Error("Get lookup wrong")
	}
}

func TestFederationDuplicateNames(t *testing.T) {
	ep := client.NewInProcess("dup", store.New())
	if _, err := New(ep, client.NewInProcess("dup", store.New())); err == nil {
		t.Error("duplicate names should error")
	}
}

func TestRelevantSources(t *testing.T) {
	f := twoEndpointFed()
	sel := NewSourceSelector(f, erh.New(4))
	ctx := context.Background()

	tpP := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	got, err := sel.RelevantSources(ctx, tpP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ep1", "ep2"}) {
		t.Errorf("sources for p = %v", got)
	}

	tpQ := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/q"), O: sparql.Var("o")}
	got, err = sel.RelevantSources(ctx, tpQ)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ep2"}) {
		t.Errorf("sources for q = %v", got)
	}

	tpNone := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/zzz"), O: sparql.Var("o")}
	got, err = sel.RelevantSources(ctx, tpNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("sources for zzz = %v", got)
	}
}

func TestSourceSelectionCache(t *testing.T) {
	f := twoEndpointFed()
	var m client.Metrics
	var eps []client.Endpoint
	for _, ep := range f.Endpoints() {
		eps = append(eps, client.NewInstrumented(ep, &m))
	}
	instr := MustNew(eps...)
	sel := NewSourceSelector(instr, erh.New(4))
	ctx := context.Background()

	tp := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://ex/p"), O: sparql.Var("o")}
	if _, err := sel.RelevantSources(ctx, tp); err != nil {
		t.Fatal(err)
	}
	first := m.Snapshot().Requests
	// Structurally identical pattern with different variable names must hit
	// the cache.
	tp2 := sparql.TriplePattern{S: sparql.Var("x"), P: sparql.IRI("http://ex/p"), O: sparql.Var("y")}
	if _, err := sel.RelevantSources(ctx, tp2); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().Requests != first {
		t.Error("cache miss for normalized-identical pattern")
	}
	if sel.CacheLen() != 1 {
		t.Errorf("cache len = %d", sel.CacheLen())
	}
	sel.ClearCache()
	if sel.CacheLen() != 0 {
		t.Error("ClearCache failed")
	}
}

func TestNormalizePattern(t *testing.T) {
	a := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://p"), O: sparql.Var("o")}
	b := sparql.TriplePattern{S: sparql.Var("x"), P: sparql.IRI("http://p"), O: sparql.Var("y")}
	if NormalizePattern(a) != NormalizePattern(b) {
		t.Error("alpha-equivalent patterns should normalize equal")
	}
	// Self-join structure must be preserved.
	c := sparql.TriplePattern{S: sparql.Var("s"), P: sparql.IRI("http://p"), O: sparql.Var("s")}
	if NormalizePattern(a) == NormalizePattern(c) {
		t.Error("self-join pattern should normalize differently")
	}
}

func TestSourceSetHelpers(t *testing.T) {
	if !SameSources([]string{"b", "a"}, []string{"a", "b"}) {
		t.Error("SameSources should ignore order")
	}
	if SameSources([]string{"a"}, []string{"a", "b"}) {
		t.Error("different lengths are not same")
	}
	got := IntersectSources([]string{"a", "b", "c"}, []string{"c", "a"})
	if !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("IntersectSources = %v", got)
	}
	if SourcesKey([]string{"b", "a"}) != "a,b" {
		t.Errorf("SourcesKey = %q", SourcesKey([]string{"b", "a"}))
	}
}
