package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseTurtle reads a Turtle document (a practical subset: @prefix/@base and
// their SPARQL-style PREFIX/BASE forms, prefixed names, the `a` keyword,
// `;` and `,` predicate/object lists, blank node labels, and literals with
// language tags, datatypes, numbers, and booleans). Anonymous blank nodes
// `[...]` and RDF collections `(...)` are not supported.
//
// N-Triples is a syntactic subset of Turtle, so ParseTurtle also reads
// N-Triples files.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("turtle: %w", err)
	}
	p := &turtleParser{in: string(data), prefixes: map[string]string{}}
	return p.document()
}

type turtleParser struct {
	in       string
	pos      int
	prefixes map[string]string
	base     string
}

func (p *turtleParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.in[:p.pos], "\n")
	return fmt.Errorf("turtle: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) document() ([]Triple, error) {
	var out []Triple
	for {
		p.skipWS()
		if p.pos >= len(p.in) {
			return out, nil
		}
		switch {
		case p.hasPrefixFold("@prefix") || p.hasPrefixFold("PREFIX"):
			if err := p.prefixDirective(); err != nil {
				return nil, err
			}
		case p.hasPrefixFold("@base") || p.hasPrefixFold("BASE"):
			if err := p.baseDirective(); err != nil {
				return nil, err
			}
		default:
			triples, err := p.triples()
			if err != nil {
				return nil, err
			}
			out = append(out, triples...)
		}
	}
}

func (p *turtleParser) hasPrefixFold(s string) bool {
	if p.pos+len(s) > len(p.in) {
		return false
	}
	return strings.EqualFold(p.in[p.pos:p.pos+len(s)], s)
}

func (p *turtleParser) prefixDirective() error {
	atForm := p.in[p.pos] == '@'
	if atForm {
		p.pos += len("@prefix")
	} else {
		p.pos += len("PREFIX")
	}
	p.skipWS()
	colon := strings.IndexByte(p.in[p.pos:], ':')
	if colon < 0 {
		return p.errf("malformed prefix declaration")
	}
	name := strings.TrimSpace(p.in[p.pos : p.pos+colon])
	p.pos += colon + 1
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if atForm {
		if !p.eat('.') {
			return p.errf("@prefix must end with '.'")
		}
	} else {
		p.eat('.') // SPARQL-style PREFIX takes no dot, but tolerate one
	}
	return nil
}

func (p *turtleParser) baseDirective() error {
	atForm := p.in[p.pos] == '@'
	if atForm {
		p.pos += len("@base")
	} else {
		p.pos += len("BASE")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	if atForm && !p.eat('.') {
		return p.errf("@base must end with '.'")
	}
	return nil
}

// triples parses one subject with its predicate-object list.
func (p *turtleParser) triples() ([]Triple, error) {
	subj, err := p.term(true)
	if err != nil {
		return nil, err
	}
	var out []Triple
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		for {
			p.skipWS()
			obj, err := p.term(false)
			if err != nil {
				return nil, err
			}
			out = append(out, Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if p.eat(',') {
				continue
			}
			break
		}
		if p.eat(';') {
			p.skipWS()
			if p.pos < len(p.in) && (p.in[p.pos] == '.' || p.in[p.pos] == ';') {
				p.eat(';')
				p.skipWS()
			}
			if p.pos < len(p.in) && p.in[p.pos] == '.' {
				break
			}
			continue
		}
		break
	}
	p.skipWS()
	if !p.eat('.') {
		return nil, p.errf("expected '.' after triples")
	}
	return out, nil
}

func (p *turtleParser) predicate() (Term, error) {
	if p.pos < len(p.in) && p.in[p.pos] == 'a' {
		// 'a' keyword only if followed by whitespace.
		if p.pos+1 < len(p.in) && isTurtleWS(p.in[p.pos+1]) {
			p.pos++
			return NewIRI(RDFType), nil
		}
	}
	t, err := p.term(true)
	if err != nil {
		return Term{}, err
	}
	if !t.IsIRI() {
		return Term{}, p.errf("predicate must be an IRI, got %s", t)
	}
	return t, nil
}

// term parses an IRI, prefixed name, blank node, or (when subjectPos is
// false) a literal.
func (p *turtleParser) term(subjectPos bool) (Term, error) {
	p.skipWS()
	if p.pos >= len(p.in) {
		return Term{}, p.errf("unexpected end of document")
	}
	c := p.in[p.pos]
	switch {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case strings.HasPrefix(p.in[p.pos:], "_:"):
		p.pos += 2
		start := p.pos
		for p.pos < len(p.in) && isPNChar(rune(p.in[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty blank node label")
		}
		return NewBlank(p.in[start:p.pos]), nil
	case c == '"' || c == '\'':
		if subjectPos {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.literal()
	case !subjectPos && (c == '+' || c == '-' || (c >= '0' && c <= '9')):
		return p.number()
	case !subjectPos && (p.hasWordAt("true") || p.hasWordAt("false")):
		v := p.hasWordAt("true")
		if v {
			p.pos += 4
		} else {
			p.pos += 5
		}
		return NewBoolean(v), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) hasWordAt(w string) bool {
	if !strings.HasPrefix(p.in[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	return end >= len(p.in) || !isPNChar(rune(p.in[end]))
}

func (p *turtleParser) iriRef() (string, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '<' {
		return "", p.errf("expected IRI")
	}
	p.pos++
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.in[p.pos : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	for p.pos < len(p.in) && isPNChar(rune(p.in[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.in) || p.in[p.pos] != ':' {
		return Term{}, p.errf("expected prefixed name near %q", snippet(p.in[start:]))
	}
	prefix := p.in[start:p.pos]
	p.pos++
	base, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	lstart := p.pos
	for p.pos < len(p.in) && (isPNChar(rune(p.in[p.pos])) || p.in[p.pos] == '.') {
		p.pos++
	}
	local := p.in[lstart:p.pos]
	// A trailing '.' terminates the statement, not the name.
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		p.pos--
	}
	return NewIRI(base + local), nil
}

func (p *turtleParser) literal() (Term, error) {
	quote := p.in[p.pos]
	long := strings.HasPrefix(p.in[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	if long {
		p.pos += 3
		end := strings.Index(p.in[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return Term{}, p.errf("unterminated long literal")
		}
		lex = p.in[p.pos : p.pos+end]
		p.pos += end + 3
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.in) {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.in[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\\' {
				if p.pos+1 >= len(p.in) {
					return Term{}, p.errf("dangling escape")
				}
				p.pos++
				switch p.in[p.pos] {
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case 't':
					b.WriteByte('\t')
				case '"', '\'', '\\':
					b.WriteByte(p.in[p.pos])
				default:
					return Term{}, p.errf("unsupported escape \\%c", p.in[p.pos])
				}
				p.pos++
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
		lex = b.String()
	}
	// Language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && (isPNChar(rune(p.in[p.pos])) || p.in[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos < len(p.in) && p.in[p.pos] == '<' {
			dt, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			return NewTypedLiteral(lex, dt), nil
		}
		dt, err := p.prefixedName()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) number() (Term, error) {
	start := p.pos
	if p.in[p.pos] == '+' || p.in[p.pos] == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
		digits++
	}
	isDouble := false
	if p.pos+1 < len(p.in) && p.in[p.pos] == '.' && p.in[p.pos+1] >= '0' && p.in[p.pos+1] <= '9' {
		isDouble = true
		p.pos++
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
		}
	}
	if digits == 0 && !isDouble {
		return Term{}, p.errf("malformed number")
	}
	lex := p.in[start:p.pos]
	if isDouble {
		return NewTypedLiteral(lex, XSDDecimal), nil
	}
	return NewTypedLiteral(lex, XSDInteger), nil
}

func (p *turtleParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if isTurtleWS(c) {
			p.pos++
			continue
		}
		if c == '#' {
			nl := strings.IndexByte(p.in[p.pos:], '\n')
			if nl < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += nl + 1
			continue
		}
		return
	}
}

func isTurtleWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isPNChar(r rune) bool {
	if r >= utf8.RuneSelf {
		return unicode.IsLetter(r) || unicode.IsDigit(r)
	}
	return r == '_' || r == '-' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

func snippet(s string) string {
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}
