package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads an N-Triples document and returns its triples.
// Lines that are empty or start with '#' are skipped. The parser accepts the
// core N-Triples grammar: IRIs in angle brackets, blank nodes, and literals
// with optional language tags or datatypes.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	//lint:lusail-vet budgetbound -- parses operator-supplied dataset files at load time, not remote responses; the input file bounds the size
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading n-triples: %w", err)
	}
	return out, nil
}

// ParseTripleLine parses a single N-Triples statement such as
// `<s> <p> "o" .` into a Triple.
func ParseTripleLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("expected terminating '.' in %q", line)
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return Triple{}, fmt.Errorf("trailing content after '.' in %q", line)
	}
	if pred.Kind != IRI {
		return Triple{}, fmt.Errorf("predicate must be an IRI, got %s", pred)
	}
	return Triple{S: s, P: pred, O: o}, nil
}

// WriteNTriples writes the triples in N-Triples format, one per line.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	}
	return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.in[p.pos], p.pos)
}

func (p *ntParser) iri() (Term, error) {
	p.pos++ // consume '<'
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.in[p.pos : p.pos+end]
	p.pos += end + 1
	return NewIRI(iri), nil
}

func (p *ntParser) blank() (Term, error) {
	if !strings.HasPrefix(p.in[p.pos:], "_:") {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) && !isNTWhitespace(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.in[start:p.pos]), nil
}

func (p *ntParser) literal() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.in) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.in[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if p.pos+1 >= len(p.in) {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			p.pos++
			switch p.in[p.pos] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, fmt.Errorf("unsupported escape \\%c", p.in[p.pos])
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && !isNTWhitespace(p.in[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.in) || p.in[p.pos] != '<' {
			return Term{}, fmt.Errorf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func isNTWhitespace(c byte) bool { return c == ' ' || c == '\t' }
