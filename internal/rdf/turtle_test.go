package rdf

import (
	"reflect"
	"strings"
	"testing"
)

func parseTTL(t *testing.T, doc string) []Triple {
	t.Helper()
	ts, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	return ts
}

func TestTurtleBasics(t *testing.T) {
	ts := parseTTL(t, `
		@prefix ex: <http://example.org/> .
		@prefix foaf: <http://xmlns.com/foaf/0.1/> .

		ex:alice a foaf:Person ;
			foaf:name "Alice" ;
			foaf:knows ex:bob , ex:carol .
		ex:bob foaf:name "Bob"@en .
	`)
	want := []Triple{
		{S: NewIRI("http://example.org/alice"), P: NewIRI(RDFType), O: NewIRI("http://xmlns.com/foaf/0.1/Person")},
		{S: NewIRI("http://example.org/alice"), P: NewIRI("http://xmlns.com/foaf/0.1/name"), O: NewLiteral("Alice")},
		{S: NewIRI("http://example.org/alice"), P: NewIRI("http://xmlns.com/foaf/0.1/knows"), O: NewIRI("http://example.org/bob")},
		{S: NewIRI("http://example.org/alice"), P: NewIRI("http://xmlns.com/foaf/0.1/knows"), O: NewIRI("http://example.org/carol")},
		{S: NewIRI("http://example.org/bob"), P: NewIRI("http://xmlns.com/foaf/0.1/name"), O: NewLangLiteral("Bob", "en")},
	}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("got:\n%v\nwant:\n%v", ts, want)
	}
}

func TestTurtleSPARQLStylePrefix(t *testing.T) {
	ts := parseTTL(t, `
		PREFIX ex: <http://example.org/>
		ex:a ex:p ex:b .
	`)
	if len(ts) != 1 || ts[0].S.Value != "http://example.org/a" {
		t.Errorf("ts = %v", ts)
	}
}

func TestTurtleNumbersAndBooleans(t *testing.T) {
	ts := parseTTL(t, `
		@prefix ex: <http://example.org/> .
		ex:x ex:int 42 ; ex:neg -7 ; ex:dec 3.14 ; ex:flag true ; ex:off false .
	`)
	if len(ts) != 5 {
		t.Fatalf("triples = %d", len(ts))
	}
	if ts[0].O != NewTypedLiteral("42", XSDInteger) {
		t.Errorf("int = %v", ts[0].O)
	}
	if ts[1].O != NewTypedLiteral("-7", XSDInteger) {
		t.Errorf("neg = %v", ts[1].O)
	}
	if ts[2].O != NewTypedLiteral("3.14", XSDDecimal) {
		t.Errorf("dec = %v", ts[2].O)
	}
	if ts[3].O != NewBoolean(true) || ts[4].O != NewBoolean(false) {
		t.Errorf("bools = %v %v", ts[3].O, ts[4].O)
	}
}

func TestTurtleDatatypesAndLongStrings(t *testing.T) {
	ts := parseTTL(t, `
		@prefix ex: <http://example.org/> .
		@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		ex:x ex:a "5"^^xsd:integer ;
		     ex:b "abc"^^<http://example.org/dt> ;
		     ex:c """multi
line "quoted" text""" .
	`)
	if ts[0].O != NewTypedLiteral("5", XSDInteger) {
		t.Errorf("a = %v", ts[0].O)
	}
	if ts[1].O != NewTypedLiteral("abc", "http://example.org/dt") {
		t.Errorf("b = %v", ts[1].O)
	}
	if !strings.Contains(ts[2].O.Value, "\"quoted\"") || !strings.Contains(ts[2].O.Value, "\n") {
		t.Errorf("c = %q", ts[2].O.Value)
	}
}

func TestTurtleBaseResolution(t *testing.T) {
	ts := parseTTL(t, `
		@base <http://example.org/data/> .
		<thing1> <p> <thing2> .
	`)
	if ts[0].S.Value != "http://example.org/data/thing1" {
		t.Errorf("base not applied: %v", ts[0].S)
	}
	// Absolute IRIs must not be rewritten.
	ts = parseTTL(t, `
		@base <http://example.org/data/> .
		<http://other.org/x> <http://other.org/p> <urn:isbn:1> .
	`)
	if ts[0].S.Value != "http://other.org/x" || ts[0].O.Value != "urn:isbn:1" {
		t.Errorf("absolute IRIs rewritten: %v", ts[0])
	}
}

func TestTurtleBlankNodesAndComments(t *testing.T) {
	ts := parseTTL(t, `
		@prefix ex: <http://example.org/> . # trailing comment
		# a full-line comment
		_:b1 ex:p _:b2 .
	`)
	if ts[0].S != NewBlank("b1") || ts[0].O != NewBlank("b2") {
		t.Errorf("blank nodes = %v", ts[0])
	}
}

func TestTurtleAcceptsNTriples(t *testing.T) {
	ts := parseTTL(t, `<http://s> <http://p> "o" .
<http://s> <http://p> <http://o2> .`)
	if len(ts) != 2 {
		t.Errorf("triples = %d", len(ts))
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:a ex:p ex:b .`, // undeclared prefix
		`@prefix ex: <http://e/> . ex:a "lit" ex:b .`, // literal predicate
		`@prefix ex: <http://e/> . ex:a ex:p ex:b`,    // missing dot
		`@prefix ex: <http://e/> ex:a ex:p ex:b .`,    // @prefix missing dot
		`@prefix ex: <http://e/> . "lit" ex:p ex:b .`, // literal subject
		`@prefix ex: <http://e/> . ex:a ex:p "unterminated .`,
	}
	for _, doc := range bad {
		if _, err := ParseTurtle(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseTurtle(%q) succeeded, want error", doc)
		}
	}
}

func TestTurtleSemicolonBeforeDot(t *testing.T) {
	ts := parseTTL(t, `
		@prefix ex: <http://example.org/> .
		ex:a ex:p ex:b ;
		     ex:q ex:c ;
		.
	`)
	if len(ts) != 2 {
		t.Errorf("triples = %d, want 2 (dangling semicolon tolerated)", len(ts))
	}
}
