package rdf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# comment
<http://s> <http://p> <http://o> .
<http://s> <http://p> "plain" .
<http://s> <http://p> "hi"@en .
<http://s> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://p> "x" .
`
	triples, err := ParseNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseNTriples: %v", err)
	}
	want := []Triple{
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewIRI("http://o")),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("plain")),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLangLiteral("hi", "en")),
		NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewTypedLiteral("5", XSDInteger)),
		NewTriple(NewBlank("b0"), NewIRI("http://p"), NewLiteral("x")),
	}
	if !reflect.DeepEqual(triples, want) {
		t.Errorf("parsed %v, want %v", triples, want)
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	line := `<http://s> <http://p> "a\"b\\c\nd\te" .`
	tr, err := ParseTripleLine(line)
	if err != nil {
		t.Fatalf("ParseTripleLine: %v", err)
	}
	if tr.O.Value != "a\"b\\c\nd\te" {
		t.Errorf("unescaped value = %q", tr.O.Value)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> <http://o>`,         // missing dot
		`<http://s> "lit" <http://o> .`,            // literal predicate
		`<http://s> <http://p> .`,                  // missing object
		`<http://s <http://p> <http://o> .`,        // unterminated IRI
		`<http://s> <http://p> "unterminated .`,    // unterminated literal
		`<http://s> <http://p> "x"^^"notiri" .`,    // datatype not IRI
		`<http://s> <http://p> <http://o> . extra`, // trailing garbage
		`_: <http://p> <http://o> .`,               // empty blank label
	}
	for _, line := range bad {
		if _, err := ParseTripleLine(line); err == nil {
			t.Errorf("ParseTripleLine(%q) succeeded, want error", line)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(NewIRI("http://s1"), NewIRI("http://p"), NewIRI("http://o")),
		NewTriple(NewIRI("http://s2"), NewIRI("http://p"), NewLangLiteral("héllo wörld", "de")),
		NewTriple(NewBlank("n1"), NewIRI("http://p"), NewTypedLiteral("3.14", XSDDouble)),
		NewTriple(NewIRI("http://s3"), NewIRI("http://p"), NewLiteral("line1\nline2\t\"quoted\"")),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, triples); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	back, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatalf("ParseNTriples: %v", err)
	}
	if !reflect.DeepEqual(back, triples) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back, triples)
	}
}
