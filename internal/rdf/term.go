// Package rdf implements the RDF data model: IRIs, literals, blank nodes,
// triples, and an N-Triples reader/writer. It is the foundation for the
// triple store, the SPARQL evaluator, and the federation layers above.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the three kinds of concrete RDF terms.
type Kind uint8

const (
	// IRI is an internationalized resource identifier, e.g. <http://a/b>.
	IRI Kind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is a blank node with a document-scoped label.
	Blank
)

// Common XSD datatype IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"
)

// Well-known RDF vocabulary IRIs.
const (
	RDFType   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel = "http://www.w3.org/2000/01/rdf-schema#label"
	OWLSameAs = "http://www.w3.org/2002/07/owl#sameAs"
)

// Term is a concrete RDF term. The zero value is the empty IRI, which is
// never produced by the constructors and can serve as a sentinel.
//
// Term is a comparable value type so it can key maps directly.
type Term struct {
	Kind     Kind
	Value    string // IRI text, literal lexical form, or blank node label
	Lang     string // language tag, only for literals
	Datatype string // datatype IRI, only for literals; empty means plain
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node term with the given label (without "_:").
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a literal term with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: Literal, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: Literal, Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return Term{Kind: Literal, Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero Term.
func (t Term) IsZero() bool { return t == Term{} }

// Numeric returns the term's value as a float64 if the term is a numeric
// literal (typed numeric, or a plain literal whose lexical form parses as a
// number, matching common SPARQL engine leniency).
func (t Term) Numeric() (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, "":
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	}
	return 0, false
}

// Bool returns the term's value as a bool for xsd:boolean literals.
func (t Term) Bool() (bool, bool) {
	if t.Kind != Literal || t.Datatype != XSDBoolean {
		return false, false
	}
	b, err := strconv.ParseBool(t.Value)
	return b, err == nil
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// Compare orders terms: blanks < IRIs < literals, then by value, language,
// and datatype. Numeric literals compare numerically when both sides are
// numeric. The ordering is total and is used for ORDER BY and index layout.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		return int(kindRank(t.Kind)) - int(kindRank(u.Kind))
	}
	if t.Kind == Literal {
		if fa, oka := t.Numeric(); oka {
			if fb, okb := u.Numeric(); okb {
				switch {
				case fa < fb:
					return -1
				case fa > fb:
					return 1
				}
			}
		}
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Lang, u.Lang); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, u.Datatype)
}

func kindRank(k Kind) uint8 {
	switch k {
	case Blank:
		return 0
	case IRI:
		return 1
	default:
		return 2
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF statement (subject, predicate, object).
type Triple struct {
	S, P, O Term
}

// NewTriple is a convenience constructor.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}
