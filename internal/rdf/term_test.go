package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	tests := []struct {
		name    string
		term    Term
		isIRI   bool
		isLit   bool
		isBlank bool
	}{
		{"iri", NewIRI("http://example.org/a"), true, false, false},
		{"plain literal", NewLiteral("hello"), false, true, false},
		{"lang literal", NewLangLiteral("hello", "en"), false, true, false},
		{"typed literal", NewTypedLiteral("5", XSDInteger), false, true, false},
		{"blank", NewBlank("b0"), false, false, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.term.IsIRI(); got != tc.isIRI {
				t.Errorf("IsIRI() = %v, want %v", got, tc.isIRI)
			}
			if got := tc.term.IsLiteral(); got != tc.isLit {
				t.Errorf("IsLiteral() = %v, want %v", got, tc.isLit)
			}
			if got := tc.term.IsBlank(); got != tc.isBlank {
				t.Errorf("IsBlank() = %v, want %v", got, tc.isBlank)
			}
		})
	}
}

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, tc := range tests {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestNumeric(t *testing.T) {
	if v, ok := NewInteger(42).Numeric(); !ok || v != 42 {
		t.Errorf("Numeric(42) = %v, %v", v, ok)
	}
	if v, ok := NewDouble(2.5).Numeric(); !ok || v != 2.5 {
		t.Errorf("Numeric(2.5) = %v, %v", v, ok)
	}
	if _, ok := NewIRI("x").Numeric(); ok {
		t.Error("IRI should not be numeric")
	}
	if _, ok := NewLiteral("abc").Numeric(); ok {
		t.Error("non-numeric literal should not be numeric")
	}
	if v, ok := NewLiteral("7").Numeric(); !ok || v != 7 {
		t.Errorf("plain numeric literal = %v, %v", v, ok)
	}
}

func TestBool(t *testing.T) {
	if v, ok := NewBoolean(true).Bool(); !ok || !v {
		t.Errorf("Bool(true) = %v, %v", v, ok)
	}
	if _, ok := NewLiteral("true").Bool(); ok {
		t.Error("plain literal should not be boolean")
	}
}

func TestCompareOrdering(t *testing.T) {
	blank := NewBlank("b")
	iri := NewIRI("http://a")
	lit := NewLiteral("a")
	if blank.Compare(iri) >= 0 {
		t.Error("blank should sort before IRI")
	}
	if iri.Compare(lit) >= 0 {
		t.Error("IRI should sort before literal")
	}
	if NewInteger(2).Compare(NewInteger(10)) >= 0 {
		t.Error("numeric literals should compare numerically")
	}
	if NewIRI("a").Compare(NewIRI("a")) != 0 {
		t.Error("equal IRIs should compare equal")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	terms := []Term{
		NewIRI("http://a"), NewIRI("http://b"), NewBlank("x"),
		NewLiteral("a"), NewLangLiteral("a", "en"), NewTypedLiteral("3", XSDInteger),
		NewInteger(3), NewDouble(3.0),
	}
	for _, a := range terms {
		for _, b := range terms {
			if a.Compare(b) != -b.Compare(a) && !(a.Compare(b) == 0 && b.Compare(a) == 0) {
				t.Errorf("Compare not antisymmetric for %s vs %s", a, b)
			}
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	want := `<http://s> <http://p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("Triple.String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	a := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("1"))
	b := NewTriple(NewIRI("http://b"), NewIRI("http://p"), NewLiteral("1"))
	c := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("2"))
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("subject ordering wrong")
	}
	if a.Compare(c) >= 0 {
		t.Error("object ordering wrong")
	}
	if a.Compare(a) != 0 {
		t.Error("self comparison should be zero")
	}
}

// Property: String() of a term produced by constructors always parses back
// to an equal term when embedded in a triple line.
func TestTermRoundTripProperty(t *testing.T) {
	f := func(s string, lang uint8) bool {
		// Restrict to printable-ish content; the escaper handles the rest.
		lit := NewLiteral(s)
		line := NewIRI("http://s").String() + " " + NewIRI("http://p").String() + " " + lit.String() + " ."
		tr, err := ParseTripleLine(line)
		if err != nil {
			// Literals containing control characters beyond our escape set
			// are out of scope for the N-Triples subset.
			for _, r := range s {
				if r < 0x20 && r != '\n' && r != '\r' && r != '\t' {
					return true
				}
			}
			return false
		}
		return tr.O == lit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
