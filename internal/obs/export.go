package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonlSpan is the JSONL export schema: one object per span, ids assigned
// depth-first so a stream can be re-assembled into a tree.
type jsonlSpan struct {
	ID      int            `json:"id"`
	Parent  int            `json:"parent"` // 0 for the root
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"` // microseconds since the root's start
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL writes the span tree as one JSON object per line.
func WriteJSONL(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	nextID := 0
	var walk func(s *Span, parent int) error
	walk = func(s *Span, parent int) error {
		nextID++
		id := nextID
		js := jsonlSpan{
			ID:      id,
			Parent:  parent,
			Name:    s.Name,
			StartUS: s.Start.Sub(root.Start).Microseconds(),
			DurUS:   s.Dur.Microseconds(),
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			js.Attrs = map[string]any{}
			for _, a := range attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := walk(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0)
}

// chromeEvent is one entry of the Chrome trace_event "complete" (ph=X)
// format, viewable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the span tree in the Chrome trace_event JSON
// array format. Concurrent sibling spans are placed on separate track ids
// so overlapping work (parallel subqueries, ASK fan-outs) renders as
// parallel lanes instead of colliding on one row.
func WriteChromeTrace(w io.Writer, root *Span) error {
	if root == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var events []chromeEvent
	nextTID := 1
	var walk func(s *Span, tid int)
	walk = func(s *Span, tid int) {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.Start.Sub(root.Start).Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  1,
			TID:  tid,
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			ev.Args = map[string]any{}
			for _, a := range attrs {
				ev.Args[a.Key] = fmt.Sprint(a.Value)
			}
		}
		events = append(events, ev)

		// Greedy lane assignment: a child reuses a sibling lane whose last
		// span has ended by the time it starts; the first lane is the
		// parent's own, so purely sequential children nest under it.
		type lane struct {
			tid int
			end time.Time
		}
		lanes := []lane{{tid: tid, end: s.Start}}
		for _, c := range s.Children() {
			childTID := -1
			for i := range lanes {
				if !c.Start.Before(lanes[i].end) {
					childTID = lanes[i].tid
					lanes[i].end = c.Start.Add(c.Dur)
					break
				}
			}
			if childTID < 0 {
				nextTID++
				childTID = nextTID
				lanes = append(lanes, lane{tid: childTID, end: c.Start.Add(c.Dur)})
			}
			walk(c, childTID)
		}
	}
	walk(root, 1)
	data, err := json.MarshalIndent(events, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
