// Package obs is the engine's observability layer: a lightweight
// hierarchical span tracer, a metrics registry with Prometheus text
// exposition, and an EXPLAIN renderer that turns a query's span tree into a
// human-readable plan/profile.
//
// The paper's evaluation argues from per-phase timings (Figure 12a) and
// remote-request counts (Sections 1 and 5); obs makes both first-class. One
// span tree is recorded per federated query — source-selection ASKs, LADE
// check queries, COUNT probes, each concurrent subquery, each delayed
// bound-join batch, and the final join — and every endpoint wrapper, the
// ERH pool, and the federation caches report into a shared metrics
// registry. There are no external dependencies.
package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as any so
// exporters can emit native JSON types; renderers format them with %v.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed node of a query's trace tree. Spans are created with
// NewSpan (roots) or StartChild and closed with End. All methods are safe
// for concurrent use and nil-safe, so tracing call sites cost nothing when
// tracing is disabled (the span is nil).
//
// Start and Dur are exported so tests and offline tools can build trees
// with fixed timings; live spans set them via NewSpan/StartChild/End.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	ended    bool
}

// NewSpan returns a root span starting now.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild creates and attaches a child span starting now. It returns nil
// when s is nil, so call sites need no tracing-enabled checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. End is idempotent: only the
// first call takes effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.Dur = time.Since(s.Start)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span. Setting an existing key overwrites its value.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the value for key and whether it is set.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and its descendants depth-first in creation order.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children() {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
}

// SumByName sums span durations grouped by span name over the whole tree.
// A query with several UNION branches has one source-selection span per
// branch; SumByName("source-selection") is the phase total, which is how
// the Figure 12(a) experiment derives its per-phase columns.
func SumByName(root *Span) map[string]time.Duration {
	out := map[string]time.Duration{}
	root.Walk(func(sp *Span, _ int) {
		out[sp.Name] += sp.Dur
	})
	return out
}

// FindAll returns all spans in the tree with the given name, depth-first.
func FindAll(root *Span, name string) []*Span {
	var out []*Span
	root.Walk(func(sp *Span, _ int) {
		if sp.Name == name {
			out = append(out, sp)
		}
	})
	return out
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by the context, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's span and returns a context
// carrying the child. When the context has no span (tracing disabled) it
// returns the context unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return ContextWithSpan(ctx, c), c
}
