package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedTree builds a deterministic span tree resembling a real federated
// query trace: fixed start times and durations, so renderers are
// golden-testable.
func fixedTree() *Span {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(name string, startMS, durMS int, attrs ...Attr) *Span {
		s := &Span{Name: name, Start: base.Add(time.Duration(startMS) * time.Millisecond), Dur: time.Duration(durMS) * time.Millisecond, ended: true}
		s.attrs = attrs
		return s
	}
	root := mk("query", 0, 24)
	branch := mk("branch", 0, 23, Attr{"patterns", 3})
	root.children = []*Span{branch}

	ss := mk("source-selection", 0, 4)
	sel := mk("select-sources", 0, 4, Attr{"pattern", "?s <p> ?o"}, Attr{"cache", "miss"}, Attr{"sources", "u0,u1"})
	sel.children = []*Span{
		mk("ask", 0, 3, Attr{"endpoint", "u0"}, Attr{"relevant", true}),
		mk("ask", 0, 4, Attr{"endpoint", "u1"}, Attr{"relevant", true}),
	}
	ss.children = []*Span{sel}

	an := mk("analysis", 4, 8)
	an.children = []*Span{
		mk("count-probe", 4, 2, Attr{"endpoint", "u0"}, Attr{"count", 120}),
		mk("check-query", 6, 5, Attr{"cache", "miss"}, Attr{"global", false}),
		mk("decompose", 11, 1, Attr{"subqueries", 2}),
	}

	ex := mk("execution", 12, 11)
	ex.children = []*Span{
		mk("subquery", 12, 6, Attr{"endpoint", "u0"}, Attr{"rows", 40}),
		mk("bound-join", 18, 4, Attr{"blocks", 2}, Attr{"bindings", 40}),
		mk("join", 22, 1, Attr{"rows", 17}),
	}
	branch.children = []*Span{ss, an, ex}
	return root
}

// fixedRegistry builds a deterministic registry.
func fixedRegistry() *Registry {
	r := NewRegistry()
	r.Counter(MetricRequests, "queries sent per endpoint", L("endpoint", "u0")).Add(12)
	r.Counter(MetricRequests, "queries sent per endpoint", L("endpoint", "u1")).Add(9)
	r.Counter(MetricErrors, "failed requests per endpoint", L("endpoint", "u0")).Add(1)
	r.Gauge(MetricERHQueueDepth, "tasks waiting for a pool slot").Set(0)
	h := r.Histogram(MetricRequestSeconds, "request latency", []float64{0.001, 0.01, 0.1, 1}, L("endpoint", "u0"))
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.25)
	rows := r.Histogram(MetricResultRows, "rows per response", []float64{1, 10, 100}, L("endpoint", "u0"))
	rows.Observe(40)
	rows.Observe(2)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixedRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prometheus.golden", b.Bytes())
}

func TestExplainGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteExplain(&b, fixedTree()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain.golden", b.Bytes())
}

func TestJSONLExport(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, fixedTree()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&b)
	n := 0
	roots := 0
	for sc.Scan() {
		var js jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if js.Parent == 0 {
			roots++
		}
		n++
	}
	if n != 14 {
		t.Errorf("span lines = %d, want 14", n)
	}
	if roots != 1 {
		t.Errorf("roots = %d, want 1", roots)
	}
}

func TestChromeTraceExport(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, fixedTree()); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 14 {
		t.Errorf("events = %d, want 14", len(events))
	}
	// The two concurrent ASK probes overlap, so they must land on
	// different lanes.
	var askTIDs []int
	for _, ev := range events {
		if ev.Name == "ask" {
			askTIDs = append(askTIDs, ev.TID)
		}
	}
	if len(askTIDs) != 2 || askTIDs[0] == askTIDs[1] {
		t.Errorf("overlapping ask spans share a lane: %v", askTIDs)
	}
}

func TestEndpointStatsPivot(t *testing.T) {
	stats := EndpointStats(fixedRegistry())
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	u0 := stats[0]
	if u0.Endpoint != "u0" || u0.Requests != 12 || u0.Errors != 1 || u0.Rows != 42 {
		t.Errorf("u0 = %+v", u0)
	}
	var b bytes.Buffer
	if err := WriteEndpointStats(&b, fixedRegistry()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte("TOTAL")) {
		t.Errorf("missing totals row:\n%s", b.String())
	}
}
