package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchyAndAttrs(t *testing.T) {
	root := NewSpan("query")
	a := root.StartChild("source-selection")
	a.SetAttr("patterns", 3)
	a.End()
	b := root.StartChild("execution")
	sq := b.StartChild("subquery")
	sq.SetAttr("endpoint", "u0")
	sq.SetAttr("endpoint", "u1") // overwrite
	sq.End()
	b.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if v, ok := sq.Attr("endpoint"); !ok || v != "u1" {
		t.Errorf("attr endpoint = %v, %v", v, ok)
	}
	var names []string
	root.Walk(func(s *Span, depth int) { names = append(names, s.Name) })
	if strings.Join(names, ",") != "query,source-selection,execution,subquery" {
		t.Errorf("walk order = %v", names)
	}
	if root.Dur <= 0 {
		t.Error("End should fix a positive duration")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpan("x")
	s.End()
	d := s.Dur
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Dur != d {
		t.Error("second End must not change the duration")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", 1)
	s.End()
	if c := s.StartChild("child"); c != nil {
		t.Error("nil span should produce nil children")
	}
	if s.Children() != nil || s.Attrs() != nil {
		t.Error("nil span accessors should return nil")
	}
	s.Walk(func(*Span, int) { t.Error("nil span should not be walked") })
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context should carry no span")
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a parent should be a no-op")
	}
	root := NewSpan("root")
	ctx = ContextWithSpan(ctx, root)
	ctx, child := StartSpan(ctx, "phase")
	if child == nil || FromContext(ctx) != child {
		t.Fatal("StartSpan should create and carry the child")
	}
	if len(root.Children()) != 1 || root.Children()[0] != child {
		t.Error("child not attached to root")
	}
}

func TestSumByName(t *testing.T) {
	root := NewSpan("query")
	for i := 0; i < 3; i++ {
		c := root.StartChild("phase")
		c.Dur = 10 * time.Millisecond
		c.ended = true
	}
	root.Dur = 50 * time.Millisecond
	sums := SumByName(root)
	if sums["phase"] != 30*time.Millisecond {
		t.Errorf("phase sum = %v", sums["phase"])
	}
	if sums["query"] != 50*time.Millisecond {
		t.Errorf("query sum = %v", sums["query"])
	}
	if got := len(FindAll(root, "phase")); got != 3 {
		t.Errorf("FindAll = %d spans", got)
	}
}

func TestSpanConcurrentUse(t *testing.T) {
	root := NewSpan("query")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("task")
			c.SetAttr("i", i)
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 50 {
		t.Errorf("children = %d, want 50", got)
	}
}
