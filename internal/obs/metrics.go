package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names shared across the engine, so exporters and the
// EXPLAIN renderer can pivot them without string duplication at call sites.
const (
	// Endpoint client traffic (package client).
	MetricRequests       = "lusail_endpoint_requests_total"
	MetricErrors         = "lusail_endpoint_errors_total"
	MetricAsks           = "lusail_endpoint_asks_total"
	MetricRetries        = "lusail_endpoint_retries_total"
	MetricRequestSeconds = "lusail_endpoint_request_seconds"
	MetricResultRows     = "lusail_endpoint_result_rows"
	MetricResultBytes    = "lusail_endpoint_result_bytes"

	// ERH worker pool (package erh).
	MetricERHQueueDepth  = "lusail_erh_queue_depth"
	MetricERHInFlight    = "lusail_erh_in_flight"
	MetricERHWaitSeconds = "lusail_erh_task_wait_seconds"

	// Federation caches.
	MetricSourceCacheHits   = "lusail_source_cache_hits_total"
	MetricSourceCacheMisses = "lusail_source_cache_misses_total"
	MetricCheckCacheHits    = "lusail_check_cache_hits_total"
	MetricCheckCacheMisses  = "lusail_check_cache_misses_total"

	// Source-selection robustness (package federation).
	MetricSourceProbeFailures = "lusail_source_probe_failures_total"

	// Resilience layer: per-endpoint circuit breakers, hedged probes, and
	// partial-results degradation (package resilience and package core).
	MetricBreakerOpens      = "lusail_breaker_opens_total"
	MetricBreakerRejections = "lusail_breaker_rejections_total"
	MetricBreakerState      = "lusail_breaker_state"
	MetricHedges            = "lusail_hedged_requests_total"
	MetricHedgeWins         = "lusail_hedge_wins_total"
	MetricDegradedFailures  = "lusail_degraded_failures_total"
	MetricFaultsInjected    = "lusail_faults_injected_total"

	// Endpoint catalog: the probe-free first tier of source selection and
	// cardinality estimation (package catalog and its consumers).
	MetricCatalogSourceHits      = "lusail_catalog_source_hits_total"
	MetricCatalogSourcePartial   = "lusail_catalog_source_partial_total"
	MetricCatalogSourceFallbacks = "lusail_catalog_source_fallbacks_total"
	MetricCatalogCardHits        = "lusail_catalog_card_hits_total"
	MetricCatalogCardFallbacks   = "lusail_catalog_card_fallbacks_total"
	MetricCatalogRefreshes       = "lusail_catalog_refreshes_total"
	MetricCatalogStaleLookups    = "lusail_catalog_stale_lookups_total"
	MetricCatalogBuildSeconds    = "lusail_catalog_build_seconds"

	// Static query analysis (package sema, run by the engine before
	// decomposition).
	MetricSemaErrors   = "lusail_sema_errors_total"
	MetricSemaWarnings = "lusail_sema_warnings_total"
	MetricSemaRewrites = "lusail_sema_rewrites_total"

	// SPARQL protocol server (package endpoint).
	MetricHTTPRequests       = "lusail_http_requests_total"
	MetricHTTPErrors         = "lusail_http_errors_total"
	MetricHTTPRequestSeconds = "lusail_http_request_seconds"

	// lusaild federation service (package server): plan cache, result
	// cache, per-tenant admission, and streaming delivery.
	MetricPlanCacheHits        = "lusail_plan_cache_hits_total"
	MetricPlanCacheMisses      = "lusail_plan_cache_misses_total"
	MetricPlanCacheEvictions   = "lusail_plan_cache_evictions_total"
	MetricPlanCacheStale       = "lusail_plan_cache_stale_total"
	MetricPlanCacheSize        = "lusail_plan_cache_size"
	MetricResultCacheHits      = "lusail_result_cache_hits_total"
	MetricResultCacheMisses    = "lusail_result_cache_misses_total"
	MetricResultCacheEvictions = "lusail_result_cache_evictions_total"
	MetricResultCacheSize      = "lusail_result_cache_size"
	MetricServerQueries        = "lusail_server_queries_total"
	MetricServerErrors         = "lusail_server_errors_total"
	MetricServerQuerySeconds   = "lusail_server_query_seconds"
	MetricServerPlanSeconds    = "lusail_server_plan_seconds"
	MetricServerRowsStreamed   = "lusail_server_rows_streamed_total"
	MetricServerDisconnects    = "lusail_server_client_disconnects_total"
	MetricAdmissionThrottled   = "lusail_admission_throttled_total"
	MetricAdmissionShed        = "lusail_admission_shed_total"
	MetricAdmissionInFlight    = "lusail_admission_in_flight"
	MetricAdmissionQueued      = "lusail_admission_queued"
	MetricAdmissionWaitSeconds = "lusail_admission_wait_seconds"
)

// Fixed bucket layouts for the engine's histograms. Request latencies span
// sub-millisecond in-process calls to multi-second WAN bound joins; row and
// byte buckets are decades.
var (
	LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	RowBuckets     = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6}
	ByteBuckets    = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
)

// Label is one metric label pair.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// bucket i counts observations <= buckets[i], plus an implicit +Inf bucket,
// with a running sum and count.
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64 // len(buckets)+1, last is +Inf
	sumBits atomic.Uint64  // float64 bits
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64

	mu     sync.Mutex
	series map[string]*series // canonical label key -> series
	order  []string
}

// Registry holds metric families and renders them as Prometheus text or a
// JSON snapshot. The zero value is not usable; call NewRegistry. Most of
// the engine reports into Default().
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that endpoint wrappers, the ERH
// pool, the federation caches, and the SPARQL protocol server report into.
func Default() *Registry { return defaultRegistry }

func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch f.kind {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case histogramKind:
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter with the given name and labels, creating the
// family and series on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, counterKind, nil).get(labels).c
}

// Gauge returns the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, gaugeKind, nil).get(labels).g
}

// Histogram returns the histogram with the given name, bucket layout, and
// labels. The bucket layout of the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.family(name, help, histogramKind, buckets).get(labels).h
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families in registration order and series in
// creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case counterKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(key), s.c.Value())
			case gaugeKind:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(key), s.g.Value())
			case histogramKind:
				cumulative := int64(0)
				for i := range s.h.counts {
					cumulative += s.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, braced(withLE(key, leString(s.h.buckets, i))), cumulative)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, braced(key), formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, braced(key), s.h.Count())
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

func withLE(key, le string) string {
	entry := `le="` + le + `"`
	if key == "" {
		return entry
	}
	return key + "," + entry
}

func leString(buckets []float64, i int) string {
	if i >= len(buckets) {
		return "+Inf"
	}
	return formatFloat(buckets[i])
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot types: a JSON-friendly copy of the registry used by the
// /debug/federation handler and the EXPLAIN per-endpoint table.

// FamilySnapshot is one metric family's state.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labeled series' state.
type SeriesSnapshot struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// HistogramSnapshot is a histogram's state with cumulative bucket counts.
type HistogramSnapshot struct {
	Buckets []BucketSnapshot `json:"buckets"`
	Sum     float64          `json:"sum"`
	Count   int64            `json:"count"`
}

// BucketSnapshot is one cumulative histogram bucket; LE is the upper bound
// rendered as a string so that "+Inf" survives JSON encoding.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot returns a point-in-time copy of every metric in the registry.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, key := range f.order {
			s := f.series[key]
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case counterKind:
				ss.Value = float64(s.c.Value())
			case gaugeKind:
				ss.Value = float64(s.g.Value())
			case histogramKind:
				hs := &HistogramSnapshot{Sum: s.h.Sum(), Count: s.h.Count()}
				cumulative := int64(0)
				for i := range s.h.counts {
					cumulative += s.h.counts[i].Load()
					hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: leString(s.h.buckets, i), Count: cumulative})
				}
				ss.Histogram = hs
				ss.Value = hs.Sum
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// MetricsHandler serves the registry in Prometheus text format (mounted at
// /metrics).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugHandler serves the registry as a JSON snapshot (mounted at
// /debug/federation).
func (r *Registry) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"metrics": r.Snapshot()})
	})
}
