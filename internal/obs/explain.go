package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// WriteExplain renders a query's span tree as a human-readable plan and
// profile: one line per span with its duration and attributes, indented as
// a tree. The output shape (names, attrs) is the query plan; the durations
// are the profile.
func WriteExplain(w io.Writer, root *Span) error {
	if root == nil {
		_, err := io.WriteString(w, "no trace recorded (tracing disabled?)\n")
		return err
	}
	// First pass: compute the widest name column so durations align.
	width := 0
	var measure func(s *Span, indent int)
	measure = func(s *Span, indent int) {
		if n := indent + len(s.Name); n > width {
			width = n
		}
		for _, c := range s.Children() {
			measure(c, indent+3)
		}
	}
	measure(root, 0)
	if width > 60 {
		width = 60
	}

	var b strings.Builder
	var write func(s *Span, prefix, childPrefix string)
	write = func(s *Span, prefix, childPrefix string) {
		line := prefix + s.Name
		pad := width - utf8.RuneCountInString(line)
		if pad < 0 {
			pad = 0
		}
		fmt.Fprintf(&b, "%s%s  %9s", line, strings.Repeat(" ", pad), FormatDuration(s.Dur))
		for _, a := range s.Attrs() {
			fmt.Fprintf(&b, "  %s=%v", a.Key, a.Value)
		}
		b.WriteByte('\n')
		children := s.Children()
		for i, c := range children {
			connector, next := "├─ ", "│  "
			if i == len(children)-1 {
				connector, next = "└─ ", "   "
			}
			write(c, childPrefix+connector, childPrefix+next)
		}
	}
	write(root, "", "")
	_, err := io.WriteString(w, b.String())
	return err
}

// EndpointStat is one row of the per-endpoint traffic table, pivoted from
// the registry's endpoint-labeled metrics.
type EndpointStat struct {
	Endpoint string
	Requests int64
	Errors   int64
	Retries  int64
	Rows     int64
	Bytes    int64
	Seconds  float64 // total request time at this endpoint
}

// EndpointStats pivots a registry snapshot into per-endpoint traffic rows,
// sorted by endpoint name. Rows, bytes, and request time come from the
// histograms' sums; requests, errors, and retries from the counters.
func EndpointStats(r *Registry) []EndpointStat {
	byEP := map[string]*EndpointStat{}
	get := func(labels map[string]string) *EndpointStat {
		name := labels["endpoint"]
		if name == "" {
			return nil
		}
		st, ok := byEP[name]
		if !ok {
			st = &EndpointStat{Endpoint: name}
			byEP[name] = st
		}
		return st
	}
	for _, fam := range r.Snapshot() {
		for _, s := range fam.Series {
			st := get(s.Labels)
			if st == nil {
				continue
			}
			switch fam.Name {
			case MetricRequests:
				st.Requests += int64(s.Value)
			case MetricErrors:
				st.Errors += int64(s.Value)
			case MetricRetries:
				st.Retries += int64(s.Value)
			case MetricResultRows:
				st.Rows += int64(s.Histogram.Sum)
			case MetricResultBytes:
				st.Bytes += int64(s.Histogram.Sum)
			case MetricRequestSeconds:
				st.Seconds += s.Histogram.Sum
			}
		}
	}
	out := make([]EndpointStat, 0, len(byEP))
	for _, st := range byEP {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// WriteEndpointStats renders the per-endpoint traffic table of a registry:
// requests, errors, retries, rows, payload bytes, and mean request latency
// per endpoint, plus a totals row.
func WriteEndpointStats(w io.Writer, r *Registry) error {
	stats := EndpointStats(r)
	if len(stats) == 0 {
		_, err := io.WriteString(w, "no endpoint traffic recorded\n")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %7s %8s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "retries", "rows", "bytes", "avg-rtt")
	var total EndpointStat
	for _, st := range stats {
		avg := time.Duration(0)
		if st.Requests > 0 {
			avg = time.Duration(st.Seconds / float64(st.Requests) * float64(time.Second))
		}
		fmt.Fprintf(&b, "%-16s %9d %7d %8d %10d %10d %10s\n",
			st.Endpoint, st.Requests, st.Errors, st.Retries, st.Rows, st.Bytes, FormatDuration(avg))
		total.Requests += st.Requests
		total.Errors += st.Errors
		total.Retries += st.Retries
		total.Rows += st.Rows
		total.Bytes += st.Bytes
		total.Seconds += st.Seconds
	}
	fmt.Fprintf(&b, "%-16s %9d %7d %8d %10d %10d\n",
		"TOTAL", total.Requests, total.Errors, total.Retries, total.Rows, total.Bytes)
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatDuration prints a duration in adaptive units (µs / ms / s).
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
