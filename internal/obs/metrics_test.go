package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", L("endpoint", "u0"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Same name+labels returns the same series; label order is canonical.
	c2 := r.Counter("c_total", "a counter", L("endpoint", "u0"))
	if c2 != c {
		t.Error("same labels should return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestLabelKeyCanonicalOrder(t *testing.T) {
	a := labelKey([]Label{L("b", "2"), L("a", "1")})
	b := labelKey([]Label{L("a", "1"), L("b", "2")})
	if a != b {
		t.Errorf("label keys differ: %q vs %q", a, b)
	}
	if esc := labelKey([]Label{L("k", "a\"b\\c\nd")}); !strings.Contains(esc, `a\"b\\c\nd`) {
		t.Errorf("escaping wrong: %q", esc)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // -> le=0.01
	h.Observe(0.01)  // boundary: le is inclusive -> le=0.01
	h.Observe(0.5)   // -> le=1
	h.Observe(3)     // -> +Inf
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.5+3; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on metric kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("endpoint", "u0")).Add(3)
	r.Histogram("lat_seconds", "latency", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d", len(snap))
	}
	if snap[0].Series[0].Labels["endpoint"] != "u0" || snap[0].Series[0].Value != 3 {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	hist := snap[1].Series[0].Histogram
	if hist == nil || hist.Count != 1 || hist.Buckets[len(hist.Buckets)-1].LE != "+Inf" {
		t.Errorf("histogram snapshot = %+v", hist)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := string(rune('a' + i%4))
			for j := 0; j < 100; j++ {
				r.Counter("reqs_total", "", L("endpoint", ep)).Inc()
				r.Histogram("lat_seconds", "", LatencyBuckets, L("endpoint", ep)).Observe(0.001)
				r.Gauge("depth", "").Add(1)
				r.Gauge("depth", "").Add(-1)
			}
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for _, fam := range r.Snapshot() {
		if fam.Name == "reqs_total" {
			for _, s := range fam.Series {
				total += int64(s.Value)
			}
		}
	}
	if total != 2000 {
		t.Errorf("total requests = %d, want 2000", total)
	}
	if r.Gauge("depth", "").Value() != 0 {
		t.Errorf("gauge should net to zero")
	}
}
