module lusail

go 1.22
